//! Snapshot persistence for the solution cache and the basis seeds.
//!
//! A long-running service accumulates a warm set — the fingerprints it has
//! already solved — plus one winning simplex basis per *structural class*
//! (cost-blind fingerprint).  [`write_snapshot`] serializes both as a small
//! JSON document (fingerprints in hex, throughputs as exact
//! `numerator/denominator` rationals, bases via
//! [`SolvedBasis::to_json`]) and [`read_snapshot`] parses it back, so a
//! restarted service preloads the entries *and* triages its very first
//! drifted solves against each class's last known basis instead of going
//! cold.
//!
//! Schedules and platforms are deliberately *not* persisted: a schedule is
//! only meaningful in the node numbering it was solved in, which the
//! snapshot cannot guarantee the next process will present.  Restored
//! entries therefore answer with exact throughput and `schedule: None` —
//! precisely what the engine already serves to isomorphic-but-renumbered
//! callers.  Bases are safe to persist and restore blindly because they are
//! advisory: a stale or corrupt basis costs pivots, never correctness.
//!
//! The `bases` array precedes the `entries` array in the document, so
//! snapshots written before bases existed (no `bases` key) still parse —
//! and old parsers, which scan everything after `"entries":[`, still read
//! new snapshots.

use std::fmt::Write as _;
use std::path::Path;
use std::str::FromStr;

use steady_core::problem::SolvedBasis;
use steady_rational::Ratio;

use crate::ServiceError;

/// One persisted cache entry: canonical fingerprint and exact throughput.
pub type SnapshotEntry = (u64, Ratio);

/// One persisted basis seed: structural-class fingerprint and the class's
/// last optimal basis.
pub type BasisEntry = (u64, SolvedBasis);

/// Renders cache entries and basis seeds as the snapshot JSON document.
pub fn render_snapshot(entries: &[SnapshotEntry], bases: &[BasisEntry]) -> String {
    let mut out = String::from("{\"bases\":[");
    for (i, (class, basis)) in bases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"class\":\"{class:016x}\",\"basis\":{}}}", basis.to_json());
    }
    out.push_str("],\"entries\":[");
    for (i, (fingerprint, throughput)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fingerprint\":\"{fingerprint:016x}\",\"throughput\":\"{throughput}\"}}"
        );
    }
    out.push_str("]}\n");
    out
}

/// Writes `entries` and `bases` to `path` in the snapshot JSON format.
pub fn write_snapshot(
    entries: &[SnapshotEntry],
    bases: &[BasisEntry],
    path: &Path,
) -> Result<(), ServiceError> {
    std::fs::write(path, render_snapshot(entries, bases))
        .map_err(|e| ServiceError(format!("cannot write snapshot to '{}': {e}", path.display())))
}

/// Reads a snapshot produced by [`write_snapshot`] back into entries and
/// basis seeds (the latter empty for snapshots predating basis
/// persistence).
pub fn read_snapshot(path: &Path) -> Result<(Vec<SnapshotEntry>, Vec<BasisEntry>), ServiceError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServiceError(format!("cannot read snapshot '{}': {e}", path.display())))?;
    let entries = parse_snapshot(&text)
        .map_err(|e| ServiceError(format!("malformed snapshot '{}': {e}", path.display())))?;
    let bases = parse_bases(&text)
        .map_err(|e| ServiceError(format!("malformed snapshot '{}': {e}", path.display())))?;
    Ok((entries, bases))
}

/// Parses the `entries` array of the snapshot document format.
pub fn parse_snapshot(text: &str) -> Result<Vec<SnapshotEntry>, String> {
    let mut entries = Vec::new();
    let body =
        text.split_once("\"entries\":[").ok_or_else(|| "missing 'entries' array".to_string())?.1;
    let mut rest = body;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or_else(|| "unterminated entry".to_string())?;
        let object = &rest[start + 1..start + end];
        entries.push(parse_entry(object)?);
        rest = &rest[start + end + 1..];
    }
    Ok(entries)
}

/// Parses the optional `bases` array of the snapshot document format.
///
/// Each element nests a [`SolvedBasis`] object, so the scan tracks one level
/// of brace depth: an element runs from its opening `{` to the `}` *after*
/// the embedded basis object closes.
pub fn parse_bases(text: &str) -> Result<Vec<BasisEntry>, String> {
    let Some((_, body)) = text.split_once("\"bases\":[") else {
        return Ok(Vec::new()); // pre-bases snapshot
    };
    // The array ends at the first `]` not inside an element; elements contain
    // exactly one nested `[` (the basis's cols), so scan element-wise.
    let mut bases = Vec::new();
    let mut rest = body;
    loop {
        let next_close = rest.find(']').ok_or_else(|| "unterminated 'bases' array".to_string())?;
        match rest.find('{') {
            Some(start) if start < next_close => {
                let element = &rest[start..];
                let class_tag = "\"class\":\"";
                let class_start = element
                    .find(class_tag)
                    .ok_or_else(|| "basis element missing 'class'".to_string())?
                    + class_tag.len();
                let class_end = element[class_start..]
                    .find('"')
                    .ok_or_else(|| "unterminated 'class'".to_string())?
                    + class_start;
                let class = u64::from_str_radix(&element[class_start..class_end], 16)
                    .map_err(|e| format!("bad class fingerprint: {e}"))?;
                let basis_tag = "\"basis\":";
                let basis_start = element
                    .find(basis_tag)
                    .ok_or_else(|| "basis element missing 'basis'".to_string())?
                    + basis_tag.len();
                // The SolvedBasis object contains no nested braces: it ends
                // at the first `}` after it opens, and the element at the
                // next one.
                let basis_end = element[basis_start..]
                    .find('}')
                    .ok_or_else(|| "unterminated basis object".to_string())?
                    + basis_start
                    + 1;
                let basis = SolvedBasis::from_json(&element[basis_start..basis_end])?;
                let element_end = element[basis_end..]
                    .find('}')
                    .ok_or_else(|| "unterminated basis element".to_string())?
                    + basis_end
                    + 1;
                bases.push((class, basis));
                rest = &element[element_end..];
            }
            _ => return Ok(bases),
        }
    }
}

fn parse_entry(object: &str) -> Result<SnapshotEntry, String> {
    let string_field = |name: &str| -> Result<&str, String> {
        let tag = format!("\"{name}\":\"");
        let start =
            object.find(&tag).ok_or_else(|| format!("entry missing field '{name}'"))? + tag.len();
        let end =
            object[start..].find('"').ok_or_else(|| format!("unterminated field '{name}'"))?
                + start;
        Ok(&object[start..end])
    };
    let fingerprint = u64::from_str_radix(string_field("fingerprint")?, 16)
        .map_err(|e| format!("bad fingerprint: {e}"))?;
    let throughput =
        Ratio::from_str(string_field("throughput")?).map_err(|e| format!("bad throughput: {e}"))?;
    if throughput.is_negative() {
        return Err(format!("negative throughput {throughput}"));
    }
    Ok((fingerprint, throughput))
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    fn sample_bases() -> Vec<BasisEntry> {
        vec![
            (0xfeed_u64, SolvedBasis { cols: vec![0, 3, 4], num_cols: 7, n_structural: 3 }),
            (1, SolvedBasis { cols: vec![], num_cols: 0, n_structural: 0 }),
        ]
    }

    #[test]
    fn snapshot_text_round_trips() {
        let entries = vec![(0x12ab_u64, rat(2, 9)), (u64::MAX, rat(0, 1)), (7, rat(15, 4))];
        let bases = sample_bases();
        let text = render_snapshot(&entries, &bases);
        assert_eq!(parse_snapshot(&text).unwrap(), entries);
        assert_eq!(parse_bases(&text).unwrap(), bases);
        let empty = render_snapshot(&[], &[]);
        assert_eq!(parse_snapshot(&empty).unwrap(), vec![]);
        assert_eq!(parse_bases(&empty).unwrap(), vec![]);
    }

    #[test]
    fn pre_bases_snapshots_still_parse() {
        // The format before basis persistence: only an entries array.
        let old = "{\"entries\":[{\"fingerprint\":\"002a\",\"throughput\":\"1/2\"}]}\n";
        assert_eq!(parse_snapshot(old).unwrap(), vec![(42u64, rat(1, 2))]);
        assert_eq!(parse_bases(old).unwrap(), vec![]);
    }

    #[test]
    fn snapshot_file_round_trips() {
        let dir = std::env::temp_dir().join("steady-service-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique per process so concurrent test runs don't race on the file.
        let path = dir.join(format!("snapshot_{}.json", std::process::id()));
        let entries = vec![(42u64, rat(1, 2))];
        let bases = sample_bases();
        write_snapshot(&entries, &bases, &path).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), (entries, bases));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(parse_snapshot("").is_err());
        assert!(parse_snapshot("{\"entries\":[{\"fingerprint\":\"zz\"}]}").is_err());
        assert!(parse_snapshot("{\"entries\":[{\"fingerprint\":\"0f\",\"throughput\":\"-1/2\"}]}")
            .is_err());
        assert!(
            parse_bases("{\"bases\":[{\"class\":\"zz\",\"basis\":{}}],\"entries\":[]}").is_err()
        );
        assert!(parse_bases("{\"bases\":[{\"class\":\"0f\"}],\"entries\":[]}").is_err());
        assert!(parse_bases("{\"bases\":[{\"class\":\"0f\",\"basis\":{\"cols\":[1]}}").is_err());
        assert!(read_snapshot(Path::new("/nonexistent/steady.json")).is_err());
    }
}
