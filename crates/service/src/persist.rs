//! Snapshot persistence for the solution cache.
//!
//! A long-running service accumulates a warm set — the fingerprints it has
//! already solved.  [`write_snapshot`] serializes that set as a small JSON
//! document (`fingerprint → throughput`, both as strings: fingerprints in
//! hex, throughputs as exact `numerator/denominator` rationals) and
//! [`read_snapshot`] parses it back, so a restarted service can preload the
//! entries and serve its old traffic from the cache immediately instead of
//! re-solving every LP.
//!
//! Schedules and platforms are deliberately *not* persisted: a schedule is
//! only meaningful in the node numbering it was solved in, which the
//! snapshot cannot guarantee the next process will present.  Restored
//! entries therefore answer with exact throughput and `schedule: None` —
//! precisely what the engine already serves to isomorphic-but-renumbered
//! callers.

use std::fmt::Write as _;
use std::path::Path;
use std::str::FromStr;

use steady_rational::Ratio;

use crate::ServiceError;

/// One persisted cache entry: canonical fingerprint and exact throughput.
pub type SnapshotEntry = (u64, Ratio);

/// Renders cache entries as the snapshot JSON document.
pub fn render_snapshot(entries: &[SnapshotEntry]) -> String {
    let mut out = String::from("{\"entries\":[");
    for (i, (fingerprint, throughput)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"fingerprint\":\"{fingerprint:016x}\",\"throughput\":\"{throughput}\"}}"
        );
    }
    out.push_str("]}\n");
    out
}

/// Writes `entries` to `path` in the snapshot JSON format.
pub fn write_snapshot(entries: &[SnapshotEntry], path: &Path) -> Result<(), ServiceError> {
    std::fs::write(path, render_snapshot(entries))
        .map_err(|e| ServiceError(format!("cannot write snapshot to '{}': {e}", path.display())))
}

/// Reads a snapshot produced by [`write_snapshot`] back into entries.
pub fn read_snapshot(path: &Path) -> Result<Vec<SnapshotEntry>, ServiceError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServiceError(format!("cannot read snapshot '{}': {e}", path.display())))?;
    parse_snapshot(&text)
        .map_err(|e| ServiceError(format!("malformed snapshot '{}': {e}", path.display())))
}

/// Parses the snapshot document format of [`render_snapshot`].
pub fn parse_snapshot(text: &str) -> Result<Vec<SnapshotEntry>, String> {
    let mut entries = Vec::new();
    let body =
        text.split_once("\"entries\":[").ok_or_else(|| "missing 'entries' array".to_string())?.1;
    let mut rest = body;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or_else(|| "unterminated entry".to_string())?;
        let object = &rest[start + 1..start + end];
        entries.push(parse_entry(object)?);
        rest = &rest[start + end + 1..];
    }
    Ok(entries)
}

fn parse_entry(object: &str) -> Result<SnapshotEntry, String> {
    let string_field = |name: &str| -> Result<&str, String> {
        let tag = format!("\"{name}\":\"");
        let start =
            object.find(&tag).ok_or_else(|| format!("entry missing field '{name}'"))? + tag.len();
        let end =
            object[start..].find('"').ok_or_else(|| format!("unterminated field '{name}'"))?
                + start;
        Ok(&object[start..end])
    };
    let fingerprint = u64::from_str_radix(string_field("fingerprint")?, 16)
        .map_err(|e| format!("bad fingerprint: {e}"))?;
    let throughput =
        Ratio::from_str(string_field("throughput")?).map_err(|e| format!("bad throughput: {e}"))?;
    if throughput.is_negative() {
        return Err(format!("negative throughput {throughput}"));
    }
    Ok((fingerprint, throughput))
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn snapshot_text_round_trips() {
        let entries = vec![(0x12ab_u64, rat(2, 9)), (u64::MAX, rat(0, 1)), (7, rat(15, 4))];
        let text = render_snapshot(&entries);
        assert_eq!(parse_snapshot(&text).unwrap(), entries);
        assert_eq!(parse_snapshot(&render_snapshot(&[])).unwrap(), vec![]);
    }

    #[test]
    fn snapshot_file_round_trips() {
        let dir = std::env::temp_dir().join("steady-service-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique per process so concurrent test runs don't race on the file.
        let path = dir.join(format!("snapshot_{}.json", std::process::id()));
        let entries = vec![(42u64, rat(1, 2))];
        write_snapshot(&entries, &path).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), entries);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(parse_snapshot("").is_err());
        assert!(parse_snapshot("{\"entries\":[{\"fingerprint\":\"zz\"}]}").is_err());
        assert!(parse_snapshot("{\"entries\":[{\"fingerprint\":\"0f\",\"throughput\":\"-1/2\"}]}")
            .is_err());
        assert!(read_snapshot(Path::new("/nonexistent/steady.json")).is_err());
    }
}
