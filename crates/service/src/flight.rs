//! Single-flight deduplication: at most one in-flight solve per key, with a
//! waiter table for callers that arrive while it runs.
//!
//! The protocol (extracted from the engine so the model checker can explore
//! it in isolation — see `tests/loom_models.rs`):
//!
//! * [`SingleFlight::join_or_lead`] runs a *re-check* closure under the
//!   admission lock (the caller's earlier lock-free cache lookup may have
//!   raced a completing solve), then either parks the caller as a waiter on
//!   an existing flight or makes it the **leader** for the key;
//! * the leader publishes its result to the cache *first* and only then
//!   calls [`SingleFlight::complete`] to take the waiter list — so any
//!   caller that misses the waiter list is guaranteed to find the cache
//!   entry on its locked re-check.  No lost wakeup, no double-solve.
//!
//! The admission lock ranks **below** the cache's shard locks in the
//! documented lock order (see [`crate::sync`]): the re-check closure may
//! call into the cache; cache internals never call back into this table.

use std::collections::HashMap;

use crate::sync::Mutex;

/// Outcome of [`SingleFlight::join_or_lead`].  `J` is the caller's context
/// (the job), consumed on park and handed back otherwise.
pub enum Flight<A, J> {
    /// The locked re-check produced an answer; nothing was enqueued and the
    /// caller's context comes back with it.
    Ready(A, J),
    /// The caller was parked as a waiter on an existing in-flight solve;
    /// its context was consumed by the `park` closure.
    Parked,
    /// The caller became the leader for the key: it must solve, publish,
    /// and then [`SingleFlight::complete`] (on every path, including
    /// unwinding — see the engine's in-flight guard).
    Leader(J),
}

/// The in-flight table: key → waiters parked on that key's running solve.
/// Generic over the waiter type so model tests can park trivial payloads.
pub struct SingleFlight<W> {
    table: Mutex<HashMap<u64, Vec<W>>>,
}

impl<W> SingleFlight<W> {
    /// An empty table.
    pub fn new() -> SingleFlight<W> {
        SingleFlight { table: Mutex::new(HashMap::new()) }
    }

    /// Runs `recheck` under the admission lock, then parks the caller on an
    /// existing flight for `key` or makes it the leader.  `park` turns the
    /// caller's context into a waiter and is only invoked when the caller
    /// actually parks.
    pub fn join_or_lead<A, J>(
        &self,
        key: u64,
        ctx: J,
        recheck: impl FnOnce() -> Option<A>,
        park: impl FnOnce(J) -> W,
    ) -> Flight<A, J> {
        let mut table = self.table.lock();
        if let Some(answer) = recheck() {
            return Flight::Ready(answer, ctx);
        }
        if let Some(waiters) = table.get_mut(&key) {
            waiters.push(park(ctx));
            return Flight::Parked;
        }
        table.insert(key, Vec::new());
        Flight::Leader(ctx)
    }

    /// Speculative leadership: becomes the leader for `key` unless `busy`
    /// reports the work is already unnecessary (cached fresh) or a flight
    /// for the key exists.  Returns whether leadership was taken.  Used by
    /// the prefetch path, which drops rather than parks.
    pub fn try_lead(&self, key: u64, busy: impl FnOnce() -> bool) -> bool {
        let mut table = self.table.lock();
        if busy() || table.contains_key(&key) {
            return false;
        }
        table.insert(key, Vec::new());
        true
    }

    /// Ends the flight for `key`, returning the waiters parked on it (empty
    /// when the key was not in flight).  The leader must have published its
    /// result before calling this — see the module docs.
    pub fn complete(&self, key: u64) -> Vec<W> {
        self.table.lock().remove(&key).unwrap_or_default()
    }

    /// Whether `key` currently has an in-flight solve.
    pub fn contains(&self, key: u64) -> bool {
        self.table.lock().contains_key(&key)
    }
}

impl<W> Default for SingleFlight<W> {
    fn default() -> Self {
        SingleFlight::new()
    }
}
