//! Load generation: configurable query mixes, concurrent clients and a
//! latency/throughput report.
//!
//! The generator builds a pool of *distinct* queries spanning every
//! collective kind and several topology families from
//! [`steady_platform::generators`] (the paper's figures, stars, a small
//! Tiers hierarchy, random connected platforms), then replays a long,
//! repetition-heavy random sequence drawn from that pool through a
//! [`Service`] from several client threads — the access pattern of a
//! deployment where many users ask about the same few platforms.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_core::error::CoreError;
use steady_core::gather::GatherProblem;
use steady_core::problem::SolvedBasis;
use steady_core::scatter::ScatterProblem;
use steady_drift::{DriftConfig, DriftModel};
use steady_forecast::{ClassFate, ForecastConfig, Forecaster, PredictedTriage, PresolvePlan};
use steady_platform::generators::{
    figure2, figure6, heterogeneous_star, random_connected, star, tiers, RandomConfig, TiersConfig,
};
use steady_platform::{NodeId, Platform};
use steady_rational::rat;

use crate::engine::{PrefetchJob, ServeError, Service, ServiceStats};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot, METRICS_SCHEMA_VERSION};
use crate::obs::ClientSpan;
use crate::query::{solve_query, Collective, Query};
use crate::ServiceError;

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total number of queries to issue.
    pub queries: usize,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Size of the distinct-query pool the sequence is drawn from.
    pub distinct: usize,
    /// Seed for both the pool and the replay sequence.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { queries: 1000, clients: 4, distinct: 24, seed: 42 }
    }
}

/// The drift shape of the tenth mix family: a *forecastable* walk — small
/// per-step walker moves (a fine grid around scale 1) and a low move
/// probability, so consecutive steps are highly repetitive and a
/// [`steady_forecast::Forecaster`] plan of a handful of candidates covers
/// most of the next step's probability mass.
pub fn forecastable_drift_config() -> DriftConfig {
    DriftConfig { grid: 16, min_num: 12, max_num: 24, move_probability: 0.15 }
}

/// Builds a pool of up to `distinct` queries cycling through ten families:
/// the Figure 2 scatter and Figure 6 reduce, star scatters, heterogeneous
/// star gathers, random-connected gossips and reduces, small Tiers reduces,
/// a **cost-redraw** family — one fixed star topology whose edge costs are
/// re-drawn independently per variant — a **cost-drift-walk** family,
/// where consecutive variants are successive steps of one bounded random
/// walk ([`steady_drift::DriftModel`]): the time-correlated traffic shape of
/// a deployment whose link performance drifts gradually — and a
/// **forecastable-drift** family, the same shape under the lazier, finer
/// walk of [`forecastable_drift_config`] (the repetition-heavy regime the
/// speculative pre-solver is built for).  The drift families yield distinct
/// cache keys inside one structural class, so they exercise the engine's
/// triage path — every variant after the first seeds its solve with the
/// class basis, and the walk families' small steps are what the
/// `InRange`/`DualRepair` fast rungs are built for.
/// Instances within a family vary in size and random seed; the fixed-figure
/// families repeat, so the pool is deduplicated by fingerprint before it is
/// returned — every entry is a genuinely distinct cache key and the reported
/// `distinct` count stays honest.
pub fn query_mix(distinct: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    // The walk families each share one model across variants so their
    // queries form genuine trajectories, not independent draws.
    let walk_star = heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5), rat(1, 6)]);
    let mut walk = DriftModel::new(walk_star.0.clone(), DriftConfig::default(), seed ^ 0xd41f);
    let lazy_star = heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]);
    let mut lazy_walk =
        DriftModel::new(lazy_star.0.clone(), forecastable_drift_config(), seed ^ 0xf0ca);
    let candidates: Vec<Query> = (0..distinct)
        .map(|i| {
            let variant = (i / 10) as u64;
            match i % 10 {
                0 => {
                    let instance = figure2();
                    Query {
                        platform: instance.platform,
                        collective: Collective::Scatter {
                            source: instance.source,
                            targets: instance.targets,
                        },
                    }
                }
                1 => {
                    let instance = figure6();
                    Query {
                        platform: instance.platform,
                        collective: Collective::Reduce {
                            participants: instance.participants,
                            target: instance.target,
                            size: instance.message_size,
                            task_cost: instance.task_cost,
                        },
                    }
                }
                2 => {
                    let leaves = 3 + (variant as usize % 4);
                    let cost = rat(1, rng.gen_range(1i64..=4));
                    let (platform, root, leaves) = star(leaves, cost);
                    Query {
                        platform,
                        collective: Collective::Scatter { source: root, targets: leaves },
                    }
                }
                3 => {
                    let costs: Vec<_> = (0..3 + (variant as usize % 3))
                        .map(|_| rat(1, rng.gen_range(1i64..=5)))
                        .collect();
                    let (platform, center, leaves) = heterogeneous_star(&costs);
                    Query {
                        platform,
                        collective: Collective::Gather { sources: leaves, sink: center },
                    }
                }
                4 => {
                    let config = RandomConfig { nodes: 5, ..RandomConfig::default() };
                    let platform = random_connected(&config, &mut rng);
                    Query {
                        platform,
                        collective: Collective::Gossip {
                            sources: vec![NodeId(0), NodeId(1)],
                            targets: vec![NodeId(2), NodeId(3)],
                        },
                    }
                }
                5 => {
                    let config = RandomConfig {
                        nodes: 5 + (variant as usize % 2),
                        ..RandomConfig::default()
                    };
                    let platform = random_connected(&config, &mut rng);
                    let participants: Vec<NodeId> = platform.node_ids().collect();
                    Query {
                        platform,
                        collective: Collective::Reduce {
                            participants,
                            target: NodeId(0),
                            size: rat(1, 1),
                            task_cost: rat(1, 1),
                        },
                    }
                }
                6 => {
                    let config = TiersConfig {
                        wan_routers: 1,
                        man_per_wan: 1,
                        lan_per_man: 3,
                        ..TiersConfig::default()
                    };
                    let t = tiers(&config, &mut rng);
                    let target = t.hosts[0];
                    Query {
                        platform: t.platform,
                        collective: Collective::Reduce {
                            participants: t.hosts,
                            target,
                            size: rat(1, 1),
                            task_cost: rat(1, 1),
                        },
                    }
                }
                7 => {
                    // Cost redraw: a fixed 4-leaf star whose edge costs are
                    // re-drawn per variant.  Every variant is a distinct cache
                    // key in one structural class, so all but the first
                    // exercise the triage path on their cold solve.
                    let costs: Vec<_> =
                        (0..4).map(|leaf| rat(1, 1 + ((variant as i64 * 5 + leaf) % 6))).collect();
                    let (platform, center, leaves) = heterogeneous_star(&costs);
                    Query {
                        platform,
                        collective: Collective::Scatter { source: center, targets: leaves },
                    }
                }
                8 => {
                    // Cost-drift walk: one more step of the shared random
                    // walk on the fixed 5-leaf star — consecutive variants
                    // are time-correlated, like a platform under gradually
                    // shifting congestion.
                    Query {
                        platform: walk.step(),
                        collective: Collective::Scatter {
                            source: walk_star.1,
                            targets: walk_star.2.clone(),
                        },
                    }
                }
                _ => {
                    // Forecastable drift: the lazier, finer walk on a fixed
                    // 4-leaf star.  Most steps move nothing or one edge by
                    // 1/16, so a small presolve plan covers the likely next
                    // platforms — the regime `forecast-bench` measures.
                    Query {
                        platform: lazy_walk.step(),
                        collective: Collective::Scatter {
                            source: lazy_star.1,
                            targets: lazy_star.2.clone(),
                        },
                    }
                }
            }
        })
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    candidates.into_iter().filter(|q| seen.insert(q.fingerprint())).collect()
}

/// Outcome of a load run: sustained throughput, latency percentiles and the
/// service's counters at the end of the run.
///
/// Latency percentiles come from the shared log-linear histogram
/// ([`HistogramSnapshot`], one per client thread, merged), not from a sorted
/// sample vector: each reported quantile is a bucket midpoint, so it carries
/// the histogram's bounded relative error of at most one bucket width —
/// `2⁻⁶ ≈ 1.6%` of the value (exact below 64 ns).  In exchange the
/// percentile math is mergeable across clients and runs and costs O(1)
/// memory regardless of query count.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries issued (including any shed by admission control).
    pub queries: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Distinct queries in the pool.
    pub distinct: usize,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Sustained queries per second.
    pub queries_per_second: f64,
    /// Median response latency, in microseconds.
    pub p50_micros: f64,
    /// 95th-percentile response latency, in microseconds.
    pub p95_micros: f64,
    /// 99th-percentile response latency, in microseconds.
    pub p99_micros: f64,
    /// Cache hit ratio over this run's queries only.
    pub hit_ratio: f64,
    /// Service counter increments attributable to this run (traffic the
    /// service handled before the run is subtracted out); `cached_entries`
    /// is the gauge value at the end of the run.
    pub stats: ServiceStats,
    /// Client-observed end-to-end latency, merged across all clients.
    pub latency: HistogramSnapshot,
    /// Increment of [`Service::metrics`] over this run — the per-stage
    /// latency histograms (`stage_*`, `e2e_*`) behind [`Self::render`]'s
    /// breakdown table.
    pub metrics: MetricsSnapshot,
    /// One span per query as the *client* saw it, recorded only when the
    /// service has tracing enabled; merged into the Perfetto export as the
    /// client tracks.
    pub client_spans: Vec<ClientSpan>,
}

impl LoadReport {
    /// Machine-readable one-object JSON summary (for `BENCH_service.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"queries\":{},\"clients\":{},\"distinct\":{},",
                "\"elapsed_seconds\":{:.6},\"queries_per_second\":{:.1},",
                "\"p50_micros\":{:.1},\"p95_micros\":{:.1},\"p99_micros\":{:.1},",
                "\"hit_ratio\":{:.4},\"hits\":{},\"misses\":{},\"coalesced\":{},",
                "\"solves\":{},\"warm_solves\":{},",
                "\"triaged\":{},\"in_range\":{},\"dual_repairs\":{},",
                "\"expired\":{},\"revalidations\":{},\"requeued\":{},\"stale_served\":{},",
                "\"mean_warm_pivots\":{:.2},\"mean_cold_pivots\":{:.2},",
                "\"mean_warm_solve_micros\":{:.1},\"mean_cold_solve_micros\":{:.1},",
                "\"shed\":{},\"errors\":{},\"evictions\":{}}}"
            ),
            METRICS_SCHEMA_VERSION,
            self.queries,
            self.clients,
            self.distinct,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.hit_ratio,
            self.stats.hits,
            self.stats.misses,
            self.stats.coalesced,
            self.stats.solves,
            self.stats.warm_solves,
            self.stats.triaged,
            self.stats.in_range,
            self.stats.dual_repairs,
            self.stats.expired,
            self.stats.revalidations,
            self.stats.requeued,
            self.stats.stale_served,
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots(),
            self.stats.mean_warm_solve_micros(),
            self.stats.mean_cold_solve_micros(),
            self.stats.shed,
            self.stats.errors,
            self.stats.evictions,
        )
    }

    /// Human-readable multi-line rendering of the report, ending with the
    /// per-stage latency breakdown table (where a query's time went:
    /// queue-wait vs lookup vs gate-wait vs solve vs publish, with the
    /// end-to-end distributions split hit / warm / cold / coalesced).
    pub fn render(&self) -> String {
        let mut out = format!(
            "queries            : {} ({} distinct, {} clients)\n\
             elapsed            : {:.3} s\n\
             queries/sec        : {:.1}\n\
             latency p50/p95/p99: {:.1} / {:.1} / {:.1} µs\n\
             cache hit ratio    : {:.1}% ({} hits, {} misses, {} evictions)\n\
             coalesced (dedup)  : {}\n\
             cold LP solves     : {} ({} warm-started, {} shed)\n\
             drift triage       : {} triaged — {} in-range, {} dual-repaired\n\
             ttl / requeue      : {} expired, {} revalidated, {} requeued, {} stale-served\n\
             mean pivots        : {:.1} warm vs {:.1} cold\n\
             mean solve latency : {:.1} µs warm vs {:.1} µs cold\n\
             scheduler lanes    : {} demand timeouts, {} prefetch cancelled, {} steals\n",
            self.queries,
            self.distinct,
            self.clients,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.hit_ratio * 100.0,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.coalesced,
            self.stats.solves,
            self.stats.warm_solves,
            self.stats.shed,
            self.stats.triaged,
            self.stats.in_range,
            self.stats.dual_repairs,
            self.stats.expired,
            self.stats.revalidations,
            self.stats.requeued,
            self.stats.stale_served,
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots(),
            self.stats.mean_warm_solve_micros(),
            self.stats.mean_cold_solve_micros(),
            self.stats.demand_timeouts,
            self.stats.prefetch_cancelled,
            self.stats.steals,
        );
        out.push_str(&stage_table(&self.metrics));
        out
    }
}

/// Renders the per-stage latency breakdown table from a [`Service::metrics`]
/// increment: one row per lifecycle stage histogram plus the end-to-end
/// distributions split by how the query was served.
pub fn stage_table(metrics: &MetricsSnapshot) -> String {
    const ROWS: [(&str, &str); 13] = [
        ("lane demand", "lane_demand_wait_nanos"),
        ("lane revalidate", "lane_revalidation_wait_nanos"),
        ("lane prefetch", "lane_prefetch_wait_nanos"),
        ("queue wait", "stage_queue_wait_nanos"),
        ("cache lookup", "stage_lookup_nanos"),
        ("gate wait", "stage_gate_wait_nanos"),
        ("solve (warm)", "stage_solve_warm_nanos"),
        ("solve (cold)", "stage_solve_cold_nanos"),
        ("publish", "stage_publish_nanos"),
        ("e2e hit", "e2e_hit_nanos"),
        ("e2e warm solve", "e2e_solve_warm_nanos"),
        ("e2e cold solve", "e2e_solve_cold_nanos"),
        ("e2e coalesced", "e2e_coalesced_nanos"),
    ];
    let mut out = String::from(
        "stage breakdown    :          stage    count      p50      p95      p99 (µs)\n",
    );
    for (label, name) in ROWS {
        let Some(h) = metrics.histogram(name) else { continue };
        if h.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "                     {label:>14} {:>8} {:>8.1} {:>8.1} {:>8.1}",
            h.count(),
            h.quantile(0.50) as f64 / 1_000.0,
            h.quantile(0.95) as f64 / 1_000.0,
            h.quantile(0.99) as f64 / 1_000.0,
        );
    }
    out
}

/// A histogram quantile in microseconds — the bucket-midpoint estimate, with
/// the histogram's ≤ one-bucket-width (≈1.6%) relative error.
fn quantile_micros(latency: &HistogramSnapshot, q: f64) -> f64 {
    latency.quantile(q) as f64 / 1_000.0
}

/// Replays `config.queries` queries drawn from [`query_mix`] through
/// `service` using `config.clients` concurrent client threads, and returns
/// the latency/throughput report.  Fails if any query fails; queries *shed*
/// by admission control are an accounted outcome, not a failure — they are
/// timed and counted like served ones (see [`ServiceStats::shed`]).
pub fn run_load(service: &Service, config: &LoadConfig) -> Result<LoadReport, ServiceError> {
    let mix = query_mix(config.distinct.max(1), config.seed);
    // Pre-draw the replay sequence so clients race only on the work counter.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6c6f_6164);
    let sequence: Vec<usize> = (0..config.queries).map(|_| rng.gen_range(0..mix.len())).collect();

    let next = AtomicUsize::new(0);
    let clients = config.clients.max(1);
    // Clients stamp with the service's own clock so their spans share a
    // time base with the worker-side traces in the Perfetto export.
    let clock = service.clock();
    let spans_wanted = service.tracing_enabled();
    let before = service.stats();
    let metrics_before = service.metrics();
    let started = Instant::now();
    type ClientOutcome = Result<(HistogramSnapshot, Vec<ClientSpan>), ServiceError>;
    let per_client: Vec<ClientOutcome> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let next = &next;
                let mix = &mix;
                let sequence = &sequence;
                let clock = Arc::clone(&clock);
                scope.spawn(move |_| {
                    let mut latency = HistogramSnapshot::empty();
                    let mut spans = Vec::new();
                    loop {
                        // relaxed: a claim ticket only needs atomicity, not
                        // ordering — each index goes to exactly one client.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= sequence.len() {
                            return Ok((latency, spans));
                        }
                        let query = mix[sequence[i]].clone();
                        let sent = clock.now_nanos();
                        let outcome = match service.query(query) {
                            Ok(served) => served.via.name(),
                            Err(ServeError::Shed) => "shed",
                            Err(ServeError::Failed(e)) => return Err(e),
                        };
                        let end = clock.now_nanos();
                        latency.record(end.saturating_sub(sent));
                        if spans_wanted {
                            spans.push(ClientSpan {
                                client: client as u32,
                                start_nanos: sent,
                                end_nanos: end,
                                outcome,
                            });
                        }
                    }
                })
            })
            .collect();
        // lint: allow(panics) — propagates a client-thread panic instead of fabricating latencies.
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
    // lint: allow(panics) — propagates a client-thread panic instead of fabricating latencies.
    .expect("a load client panicked");
    let elapsed = started.elapsed();

    let mut latency = HistogramSnapshot::empty();
    let mut client_spans = Vec::new();
    for client in per_client {
        let (client_latency, spans) = client?;
        latency.merge(&client_latency);
        client_spans.extend(spans);
    }

    let stats = service.stats().since(&before);
    let metrics = service.metrics().since(&metrics_before);
    let elapsed_seconds = elapsed.as_secs_f64();
    Ok(LoadReport {
        queries: latency.count() as usize,
        clients,
        distinct: mix.len(),
        elapsed_seconds,
        queries_per_second: if elapsed_seconds > 0.0 {
            latency.count() as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_micros: quantile_micros(&latency, 0.50),
        p95_micros: quantile_micros(&latency, 0.95),
        p99_micros: quantile_micros(&latency, 0.99),
        hit_ratio: stats.hit_ratio(),
        stats,
        latency,
        metrics,
        client_spans,
    })
}

/// Parameters of a drift scenario run (see [`run_drift_load`]).
#[derive(Debug, Clone)]
pub struct DriftLoadConfig {
    /// Number of drift epochs: each advances the service epoch and steps
    /// every scenario's random walk once.
    pub epochs: usize,
    /// Repeat submissions of each epoch's query (cache-hit traffic riding
    /// along with the drift).
    pub hits_per_epoch: usize,
    /// Seed for the walks.
    pub seed: u64,
    /// Re-solve every drifted query cold after the run and require exact
    /// `Ratio` equality with the served answer.
    pub verify: bool,
}

impl Default for DriftLoadConfig {
    fn default() -> Self {
        DriftLoadConfig { epochs: 40, hits_per_epoch: 3, seed: 42, verify: true }
    }
}

/// Outcome of a drift scenario run: the triage split, TTL/revalidation
/// traffic and the exactness verification count.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Drift epochs executed.
    pub epochs: usize,
    /// Total queries issued (drifted + hit + revalidation traffic).
    pub queries: usize,
    /// Drifted first-submissions (one per scenario per epoch).
    pub drifted_queries: usize,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Drifted answers re-verified exact against an independent cold solve.
    pub verified: usize,
    /// Service counter increments attributable to this run.
    pub stats: ServiceStats,
}

impl DriftReport {
    /// Fraction of triaged solves that reused the basis (`InRange` +
    /// `DualRepair`) — the drift pipeline's headline number.
    pub fn triage_reuse_fraction(&self) -> f64 {
        self.stats.triage_reuse_fraction()
    }

    /// Machine-readable one-object JSON summary (for `BENCH_drift.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"epochs\":{},\"queries\":{},\"drifted_queries\":{},",
                "\"elapsed_seconds\":{:.6},",
                "\"solves\":{},\"triaged\":{},\"in_range\":{},\"dual_repairs\":{},",
                "\"warm_solves\":{},\"cold_solves\":{},",
                "\"triage_reuse_fraction\":{:.4},",
                "\"expired\":{},\"revalidations\":{},\"requeued\":{},\"stale_served\":{},",
                "\"mean_warm_pivots\":{:.2},\"mean_cold_pivots\":{:.2},",
                "\"hits\":{},\"verified\":{},\"errors\":{}}}"
            ),
            METRICS_SCHEMA_VERSION,
            self.epochs,
            self.queries,
            self.drifted_queries,
            self.elapsed_seconds,
            self.stats.solves,
            self.stats.triaged,
            self.stats.in_range,
            self.stats.dual_repairs,
            self.stats.warm_solves,
            self.stats.cold_solves,
            self.triage_reuse_fraction(),
            self.stats.expired,
            self.stats.revalidations,
            self.stats.requeued,
            self.stats.stale_served,
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots(),
            self.stats.hits,
            self.verified,
            self.stats.errors,
        )
    }

    /// Human-readable multi-line rendering of the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "epochs             : {} ({} queries total)", self.epochs, self.queries);
        let _ = writeln!(out, "elapsed            : {:.3} s", self.elapsed_seconds);
        let _ = writeln!(
            out,
            "drifted queries    : {} ({} triaged against a prior basis)",
            self.drifted_queries, self.stats.triaged
        );
        let _ = writeln!(
            out,
            "triage outcomes    : {} in-range, {} dual-repaired, {} resolved ({:.1}% reused)",
            self.stats.in_range,
            self.stats.dual_repairs,
            self.stats.triaged - self.stats.in_range - self.stats.dual_repairs,
            self.triage_reuse_fraction() * 100.0,
        );
        let _ = writeln!(
            out,
            "ttl traffic        : {} expired, {} revalidated, {} stale-served",
            self.stats.expired, self.stats.revalidations, self.stats.stale_served
        );
        let _ = writeln!(
            out,
            "mean pivots        : {:.1} warm vs {:.1} cold",
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots()
        );
        let _ = writeln!(
            out,
            "exactness          : {} drifted answers verified against cold solves",
            self.verified
        );
        out
    }
}

/// One drifting workload: a platform under a random walk plus the collective
/// asked about it (node roles stay fixed — only edge costs move, so every
/// step stays in one structural class).
struct DriftScenario {
    model: DriftModel,
    build: Box<dyn Fn(Platform) -> Query>,
    previous: Option<Query>,
}

/// The fixed scenario family of `steady drift-bench`: a star scatter, a star
/// gather and a random-connected reduce, each under an independent walk.
fn drift_scenarios(seed: u64) -> Vec<DriftScenario> {
    let scatter_star = heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5), rat(1, 6)]);
    let gather_star = heterogeneous_star(&[rat(1, 2), rat(2, 3), rat(1, 4)]);
    let reduce_platform = random_connected(
        &RandomConfig { nodes: 5, ..RandomConfig::default() },
        &mut StdRng::seed_from_u64(seed),
    );
    let reduce_participants: Vec<NodeId> = reduce_platform.node_ids().collect();
    let config = DriftConfig::default();
    vec![
        DriftScenario {
            model: DriftModel::new(scatter_star.0, config.clone(), seed ^ 1),
            build: Box::new(move |platform| Query {
                platform,
                collective: Collective::Scatter {
                    source: scatter_star.1,
                    targets: scatter_star.2.clone(),
                },
            }),
            previous: None,
        },
        DriftScenario {
            model: DriftModel::new(gather_star.0, config.clone(), seed ^ 2),
            build: Box::new(move |platform| Query {
                platform,
                collective: Collective::Gather {
                    sources: gather_star.2.clone(),
                    sink: gather_star.1,
                },
            }),
            previous: None,
        },
        DriftScenario {
            model: DriftModel::new(reduce_platform, config, seed ^ 3),
            build: Box::new(move |platform| Query {
                platform,
                collective: Collective::Reduce {
                    participants: reduce_participants.clone(),
                    target: reduce_participants[0],
                    size: rat(1, 1),
                    task_cost: rat(1, 1),
                },
            }),
            previous: None,
        },
    ]
}

/// Replays the random-walk drift scenario family through `service`: each
/// epoch advances the service epoch (expiring the previous epoch's answers
/// under a TTL), steps every scenario's walk, submits the drifted query (a
/// fresh cache key in a known structural class → drift triage), repeats it
/// for hit traffic, and re-asks the *previous* epoch's query to exercise
/// TTL revalidation.  With [`DriftLoadConfig::verify`] set, every drifted
/// answer is re-checked for exact `Ratio` equality against an independent
/// cold solve after the run.
///
/// The service should be configured with a [`ttl`](crate::ServiceConfig::ttl)
/// (e.g. `Some(0)`) for the revalidation path to light up; without one the
/// run still exercises triage on every drifted query.
pub fn run_drift_load(
    service: &Service,
    config: &DriftLoadConfig,
) -> Result<DriftReport, ServiceError> {
    let mut scenarios = drift_scenarios(config.seed);
    let mut served: Vec<(Query, steady_rational::Ratio)> = Vec::new();
    let mut queries = 0usize;
    let before = service.stats();
    let started = Instant::now();

    let mut ask = |query: Query| -> Result<std::sync::Arc<crate::query::Answer>, ServiceError> {
        queries += 1;
        match service.query(query) {
            Ok(response) => Ok(response.answer),
            Err(ServeError::Shed) => {
                Err(ServiceError("drift run shed a query; run without admission limits".into()))
            }
            Err(ServeError::Failed(e)) => Err(e),
        }
    };

    for _ in 0..config.epochs.max(1) {
        service.advance_epoch();
        for scenario in scenarios.iter_mut() {
            let drifted = (scenario.build)(scenario.model.step());
            let answer = ask(drifted.clone())?;
            served.push((drifted.clone(), answer.throughput.clone()));
            for _ in 1..config.hits_per_epoch.max(1) {
                ask(drifted.clone())?;
            }
            // Revalidation probe: the previous epoch's query is expired now
            // (under a TTL) and must be revalidated through triage.
            if let Some(previous) = scenario.previous.replace(drifted) {
                ask(previous)?;
            }
        }
    }
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut verified = 0usize;
    if config.verify {
        for (query, throughput) in &served {
            let cold = solve_query(query, false)?;
            if cold.throughput != *throughput {
                return Err(ServiceError(format!(
                    "drift triage diverged from a cold solve: served {} vs cold {}",
                    throughput, cold.throughput
                )));
            }
            verified += 1;
        }
    }

    Ok(DriftReport {
        epochs: config.epochs.max(1),
        queries,
        drifted_queries: served.len(),
        elapsed_seconds,
        verified,
        stats: service.stats().since(&before),
    })
}

/// Parameters of a forecast scenario run (see [`run_forecast_load`]).
#[derive(Debug, Clone)]
pub struct ForecastLoadConfig {
    /// Number of drift epochs: each forecasts, pre-solves the plan during
    /// idle time, then steps every scenario's walk and replays the drifted
    /// queries.
    pub epochs: usize,
    /// Repeat submissions of each epoch's query (cache-hit traffic riding
    /// along with the drift).
    pub hits_per_epoch: usize,
    /// Seed for the walks.
    pub seed: u64,
    /// Forecast horizon in drift steps (the bench steps once per epoch, so
    /// 1 is the honest setting; larger horizons widen the envelope).
    pub horizon: u64,
    /// Presolve-plan length per scenario per epoch (the likeliest-next
    /// platforms; also bounds the per-epoch certification work).
    pub plan: usize,
    /// Re-solve every drifted query cold after the run and require exact
    /// `Ratio` equality with the served answer.
    pub verify: bool,
}

impl Default for ForecastLoadConfig {
    fn default() -> Self {
        ForecastLoadConfig {
            epochs: 50,
            hits_per_epoch: 2,
            seed: 42,
            horizon: 1,
            plan: 16,
            verify: true,
        }
    }
}

/// Outcome of a forecast scenario run: how much of the drift was predicted
/// off the critical path.
#[derive(Debug, Clone)]
pub struct ForecastReport {
    /// Drift epochs executed.
    pub epochs: usize,
    /// Total demand queries issued (drifted + hit traffic + class seeding).
    pub queries: usize,
    /// Drifted first-submissions (one per scenario per epoch).
    pub drifted_queries: usize,
    /// Prefetch jobs scheduled from presolve plans.
    pub scheduled: usize,
    /// Epoch-forecasts that certified [`ClassFate::WillHold`].
    pub will_hold: usize,
    /// Epoch-forecasts that reported [`ClassFate::MayExit`].
    pub may_exit: usize,
    /// Epoch-forecasts that certified [`ClassFate::WillExit`].
    pub will_exit: usize,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Drifted answers re-verified exact against an independent cold solve.
    pub verified: usize,
    /// Service counter increments attributable to this run.
    pub stats: ServiceStats,
}

impl ForecastReport {
    /// Fraction of fresh demand work answered from prefetched entries (see
    /// [`ServiceStats::prefetch_hit_fraction`]) — the gate of
    /// `steady forecast-bench --min-prefetch-hit`.
    pub fn prefetch_hit_fraction(&self) -> f64 {
        self.stats.prefetch_hit_fraction()
    }

    /// Machine-readable one-object JSON summary (for `BENCH_forecast.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"epochs\":{},\"queries\":{},\"drifted_queries\":{},\"scheduled\":{},",
                "\"elapsed_seconds\":{:.6},",
                "\"prefetched\":{},\"prefetch_hits\":{},\"prefetch_wasted\":{},",
                "\"predicted_exits\":{},\"prefetch_hit_fraction\":{:.4},",
                "\"will_hold\":{},\"may_exit\":{},\"will_exit\":{},",
                "\"solves\":{},\"triaged\":{},\"in_range\":{},\"dual_repairs\":{},",
                "\"hits\":{},\"preferred_evictions\":{},\"verified\":{},\"errors\":{}}}"
            ),
            METRICS_SCHEMA_VERSION,
            self.epochs,
            self.queries,
            self.drifted_queries,
            self.scheduled,
            self.elapsed_seconds,
            self.stats.prefetched,
            self.stats.prefetch_hits,
            self.stats.prefetch_wasted,
            self.stats.predicted_exits,
            self.prefetch_hit_fraction(),
            self.will_hold,
            self.may_exit,
            self.will_exit,
            self.stats.solves,
            self.stats.triaged,
            self.stats.in_range,
            self.stats.dual_repairs,
            self.stats.hits,
            self.stats.preferred_evictions,
            self.verified,
            self.stats.errors,
        )
    }

    /// Human-readable multi-line rendering of the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "epochs             : {} ({} queries total)", self.epochs, self.queries);
        let _ = writeln!(out, "elapsed            : {:.3} s", self.elapsed_seconds);
        let _ = writeln!(
            out,
            "forecasts          : {} will-hold, {} may-exit, {} will-exit",
            self.will_hold, self.may_exit, self.will_exit
        );
        let _ = writeln!(
            out,
            "speculative solves : {} scheduled, {} pre-solved, {} predicted exits",
            self.scheduled, self.stats.prefetched, self.stats.predicted_exits
        );
        let _ = writeln!(
            out,
            "prefetch landings  : {} hits, {} wasted ({:.1}% of fresh demand answered early)",
            self.stats.prefetch_hits,
            self.stats.prefetch_wasted,
            self.prefetch_hit_fraction() * 100.0,
        );
        let _ = writeln!(
            out,
            "demand solves      : {} ({} triaged — {} in-range, {} dual-repaired)",
            self.stats.solves, self.stats.triaged, self.stats.in_range, self.stats.dual_repairs
        );
        let _ = writeln!(
            out,
            "exactness          : {} drifted answers verified against cold solves",
            self.verified
        );
        out
    }
}

/// A scenario's monomorphized forecast hook: the
/// [`steady_core::problem::SteadyProblem`] types differ per collective, so
/// the plan call is captured per scenario.
type PlanFn =
    Box<dyn Fn(&Forecaster, &DriftModel, &SolvedBasis) -> Result<PresolvePlan, CoreError>>;

/// One forecastable workload: a platform under a lazy random walk, the
/// collective asked about it, and its forecast hook.
struct ForecastScenario {
    model: DriftModel,
    to_query: Box<dyn Fn(Platform) -> Query>,
    plan: PlanFn,
}

/// The fixed scenario family of `steady forecast-bench`: a star scatter and
/// a star gather, each under an independent *forecastable* walk
/// ([`forecastable_drift_config`]).
fn forecast_scenarios(seed: u64) -> Vec<ForecastScenario> {
    let scatter_star = heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]);
    let gather_star = heterogeneous_star(&[rat(1, 2), rat(2, 3), rat(1, 4)]);
    let config = forecastable_drift_config();
    let (s_center, s_leaves) = (scatter_star.1, scatter_star.2.clone());
    let (g_sink, g_sources) = (gather_star.1, gather_star.2.clone());
    vec![
        ForecastScenario {
            model: DriftModel::new(scatter_star.0, config.clone(), seed ^ 0x5ca7),
            to_query: Box::new({
                let leaves = s_leaves.clone();
                move |platform| Query {
                    platform,
                    collective: Collective::Scatter { source: s_center, targets: leaves.clone() },
                }
            }),
            plan: Box::new(move |forecaster, model, basis| {
                forecaster.forecast(
                    model,
                    |p| ScatterProblem::new(p, s_center, s_leaves.clone()),
                    basis,
                )
            }),
        },
        ForecastScenario {
            model: DriftModel::new(gather_star.0, config, seed ^ 0x6a73),
            to_query: Box::new({
                let sources = g_sources.clone();
                move |platform| Query {
                    platform,
                    collective: Collective::Gather { sources: sources.clone(), sink: g_sink },
                }
            }),
            plan: Box::new(move |forecaster, model, basis| {
                forecaster.forecast(
                    model,
                    |p| GatherProblem::new(p, g_sources.clone(), g_sink),
                    basis,
                )
            }),
        },
    ]
}

/// Replays the forecastable drift scenarios through `service` with
/// speculative pre-solving: each epoch forecasts the likeliest next
/// platforms from the walk's current state, schedules them as prefetch
/// jobs, lets the idle workers drain the plan, then steps the walk and
/// submits the drifted queries — measuring how many were answered from a
/// prefetched entry instead of a critical-path solve.  With
/// [`ForecastLoadConfig::verify`] set, every drifted answer (prefetched or
/// not) is re-checked for exact `Ratio` equality against an independent
/// cold solve after the run.
///
/// Run the service without admission limits; a TTL is fine (prefetched
/// entries are stamped with the epoch they are predicted for).
pub fn run_forecast_load(
    service: &Service,
    config: &ForecastLoadConfig,
) -> Result<ForecastReport, ServiceError> {
    let mut scenarios = forecast_scenarios(config.seed);
    let forecaster = Forecaster::new(ForecastConfig {
        horizon: config.horizon.max(1),
        max_candidates: config.plan.max(1),
        // The plan is the point here: examine just enough of the envelope
        // (best-first, so exactly the likeliest states) to fill it.
        max_states: config.plan.max(1) + 1,
    });
    let mut served: Vec<(Query, steady_rational::Ratio)> = Vec::new();
    let mut queries = 0usize;
    let mut scheduled = 0usize;
    let (mut will_hold, mut may_exit, mut will_exit) = (0usize, 0usize, 0usize);
    let before = service.stats();
    let started = Instant::now();

    let mut ask = |query: Query| -> Result<std::sync::Arc<crate::query::Answer>, ServiceError> {
        queries += 1;
        match service.query(query) {
            Ok(response) => Ok(response.answer),
            Err(ServeError::Shed) => {
                Err(ServiceError("forecast run shed a query; run without admission limits".into()))
            }
            Err(ServeError::Failed(e)) => Err(e),
        }
    };

    // Seed every scenario's structural class with one demand solve of its
    // base state, so the first forecast has a basis to certify against.
    for scenario in scenarios.iter() {
        ask((scenario.to_query)(scenario.model.current()))?;
    }

    for _ in 0..config.epochs.max(1) {
        // The prefetched answers belong to the *next* epoch's traffic.
        service.advance_epoch();
        for scenario in scenarios.iter() {
            let current = (scenario.to_query)(scenario.model.current());
            let class = current.structural_fingerprint().0;
            let Some(basis) = service.class_basis(class) else { continue };
            let plan = (scenario.plan)(&forecaster, &scenario.model, &basis)
                .map_err(|e| ServiceError(format!("forecast failed: {e}")))?;
            match plan.fate {
                ClassFate::WillHold => will_hold += 1,
                ClassFate::MayExit => may_exit += 1,
                ClassFate::WillExit => will_exit += 1,
            }
            let jobs: Vec<PrefetchJob> = plan
                .candidates
                .iter()
                .map(|candidate| PrefetchJob {
                    query: (scenario.to_query)(candidate.platform.clone()),
                    predicted_exit: candidate.expected == PredictedTriage::Repair,
                })
                .collect();
            scheduled += service.schedule_prefetch(jobs);
        }
        if !service.await_prefetch_idle(Duration::from_secs(120)) {
            return Err(ServiceError("the prefetch backlog did not drain".into()));
        }
        // The drift happens; the (hopefully predicted) traffic arrives.
        for scenario in scenarios.iter_mut() {
            let drifted = (scenario.to_query)(scenario.model.step());
            let answer = ask(drifted.clone())?;
            served.push((drifted.clone(), answer.throughput.clone()));
            for _ in 1..config.hits_per_epoch.max(1) {
                ask(drifted.clone())?;
            }
        }
    }
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut verified = 0usize;
    if config.verify {
        for (query, throughput) in &served {
            let cold = solve_query(query, false)?;
            if cold.throughput != *throughput {
                return Err(ServiceError(format!(
                    "a (possibly prefetched) answer diverged from a cold solve: \
                     served {} vs cold {}",
                    throughput, cold.throughput
                )));
            }
            verified += 1;
        }
    }

    Ok(ForecastReport {
        epochs: config.epochs.max(1),
        queries,
        drifted_queries: served.len(),
        scheduled,
        will_hold,
        may_exit,
        will_exit,
        elapsed_seconds,
        verified,
        stats: service.stats().since(&before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_deduplicated_and_spans_kinds() {
        let a = query_mix(14, 9);
        let b = query_mix(14, 9);
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.fingerprint(), qb.fingerprint());
        }
        // The fixed-figure families repeat past one full cycle; duplicates
        // are dropped, and what remains is pairwise distinct.
        assert!(a.len() >= 7 && a.len() <= 14, "got {} queries", a.len());
        let fingerprints: std::collections::BTreeSet<_> =
            a.iter().map(|q| q.fingerprint()).collect();
        assert_eq!(fingerprints.len(), a.len(), "pool is deduplicated by fingerprint");
        let kinds: std::collections::BTreeSet<_> =
            a.iter().map(|q| q.collective.kind_name()).collect();
        assert!(kinds.len() >= 4, "mix spans several collective kinds: {kinds:?}");
    }

    #[test]
    fn every_mix_query_is_valid() {
        for query in query_mix(21, 3) {
            query.validate().expect("mix queries reference existing nodes");
        }
    }

    #[test]
    fn mix_contains_a_cost_drift_structural_class() {
        // The cost-drift family yields several distinct cache keys in one
        // structural class, so a load run actually exercises warm starts.
        let mix = query_mix(24, 42);
        let mut class_sizes = std::collections::BTreeMap::new();
        for query in &mix {
            *class_sizes.entry(query.structural_fingerprint()).or_insert(0usize) += 1;
        }
        assert!(
            class_sizes.values().any(|&n| n >= 2),
            "expected a structural class with several cost variants: {class_sizes:?}"
        );
    }

    #[test]
    fn mix_contains_a_time_correlated_walk_class() {
        // The walk family (i % 10 == 8) puts several successive walk states
        // of one fixed star into the pool: same structural class, distinct
        // cache keys.
        let mix = query_mix(40, 5);
        let mut class_sizes = std::collections::BTreeMap::new();
        for query in &mix {
            *class_sizes.entry(query.structural_fingerprint()).or_insert(0usize) += 1;
        }
        assert!(
            class_sizes.values().any(|&n| n >= 3),
            "expected a walk class with several steps: {class_sizes:?}"
        );
    }

    #[test]
    fn mix_contains_the_forecastable_family() {
        // The tenth family (i % 10 == 9) walks the lazy fine-grained config:
        // its variants share one structural class, and consecutive steps
        // are close enough that a one-step envelope covers them.
        let mix = query_mix(60, 11);
        let lazy_class = {
            let (platform, center, leaves) =
                heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]);
            Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
                .structural_fingerprint()
        };
        let members = mix.iter().filter(|q| q.structural_fingerprint() == lazy_class).count();
        assert!(members >= 2, "expected several lazy-walk variants, got {members}");
        let config = forecastable_drift_config();
        assert!(config.move_probability < DriftConfig::default().move_probability);
        assert!(config.min_num > DriftConfig::default().min_num);
        assert!(config.max_num < DriftConfig::default().max_num);
    }

    #[test]
    fn forecast_load_prefetches_exactly() {
        use crate::engine::{Service, ServiceConfig};

        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let config = ForecastLoadConfig {
            epochs: 10,
            hits_per_epoch: 2,
            seed: 9,
            horizon: 1,
            plan: 12,
            verify: true,
        };
        let report = run_forecast_load(&service, &config).unwrap();
        assert_eq!(report.epochs, 10);
        assert_eq!(report.drifted_queries, 20, "2 scenarios x 10 epochs");
        assert_eq!(report.verified, 20, "every drifted answer checked against a cold solve");
        assert_eq!(report.stats.errors, 0);
        assert!(report.scheduled > 0, "plans were scheduled");
        assert!(report.stats.prefetched > 0, "idle workers pre-solved candidates");
        assert_eq!(
            report.will_hold + report.may_exit + report.will_exit,
            20,
            "one forecast per scenario per epoch"
        );
        assert!(
            report.stats.prefetch_hits > 0,
            "a lazy walk must land on the plan at least once in 10 epochs: {:?}",
            report.stats
        );
        let json = report.to_json();
        for key in ["prefetch_hit_fraction", "prefetched", "prefetch_hits", "will_hold", "verified"]
        {
            assert!(json.contains(key), "forecast JSON misses '{key}': {json}");
        }
        assert!(!report.render().is_empty());
    }

    #[test]
    fn drift_load_triages_revalidates_and_stays_exact() {
        use crate::engine::{Service, ServiceConfig};

        let service =
            Service::start(ServiceConfig { workers: 2, ttl: Some(0), ..ServiceConfig::default() });
        let config = DriftLoadConfig { epochs: 4, hits_per_epoch: 2, seed: 7, verify: true };
        let report = run_drift_load(&service, &config).unwrap();
        assert_eq!(report.epochs, 4);
        assert_eq!(report.drifted_queries, 12, "3 scenarios x 4 epochs");
        assert_eq!(report.verified, 12, "every drifted answer checked against a cold solve");
        assert_eq!(report.stats.errors, 0);
        assert!(report.stats.triaged > 0, "later epochs must triage against a prior basis");
        assert!(report.stats.expired > 0, "ttl 0 must expire the previous epoch's answers");
        assert!(report.stats.revalidations > 0, "the probe re-asks expired entries");
        assert!(
            report.stats.in_range + report.stats.dual_repairs > 0,
            "a bounded walk must reuse the basis at least once: {:?}",
            report.stats
        );
        let json = report.to_json();
        for key in ["triage_reuse_fraction", "in_range", "dual_repairs", "verified"] {
            assert!(json.contains(key), "drift JSON misses '{key}': {json}");
        }
        assert!(!report.render().is_empty());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = LoadReport {
            queries: 10,
            clients: 2,
            distinct: 3,
            elapsed_seconds: 0.5,
            queries_per_second: 20.0,
            p50_micros: 1.0,
            p95_micros: 2.0,
            p99_micros: 3.0,
            hit_ratio: 0.7,
            stats: ServiceStats::default(),
            latency: HistogramSnapshot::empty(),
            metrics: MetricsSnapshot::default(),
            client_spans: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema_version\":2"));
        assert!(json.contains("\"queries_per_second\":20.0"));
        assert!(json.contains("\"hit_ratio\":0.7000"));
        assert!(!report.render().is_empty());
    }

    #[test]
    fn load_report_uses_the_shared_histogram_and_stage_metrics() {
        use crate::engine::{Service, ServiceConfig};

        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let config = LoadConfig { queries: 120, clients: 3, distinct: 8, seed: 4 };
        let report = run_load(&service, &config).unwrap();
        assert_eq!(report.queries, 120);
        assert_eq!(report.latency.count(), 120, "every query lands in the merged histogram");
        // The percentile fields are the histogram's quantiles, verbatim.
        assert_eq!(report.p50_micros, report.latency.quantile(0.50) as f64 / 1_000.0);
        assert_eq!(report.p99_micros, report.latency.quantile(0.99) as f64 / 1_000.0);
        assert!(report.p50_micros <= report.p95_micros && report.p95_micros <= report.p99_micros);
        // The per-stage metrics increment covers exactly this run's queries.
        let queue = report.metrics.histogram("stage_queue_wait_nanos").unwrap();
        assert_eq!(queue.count(), 120, "every served query crossed the queue stage");
        let rendered = report.render();
        assert!(rendered.contains("stage breakdown"), "render has the stage table:\n{rendered}");
        assert!(rendered.contains("queue wait"), "table lists queue wait:\n{rendered}");
        // Tracing was off, so no client spans were collected.
        assert!(report.client_spans.is_empty());
    }

    #[test]
    fn traced_load_collects_client_spans() {
        use crate::engine::{Service, ServiceConfig};

        let service =
            Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() }.traced());
        let config = LoadConfig { queries: 40, clients: 2, distinct: 6, seed: 11 };
        let report = run_load(&service, &config).unwrap();
        assert_eq!(report.client_spans.len(), 40, "one span per query when tracing");
        for span in &report.client_spans {
            assert!(span.client < 2);
            assert!(span.end_nanos >= span.start_nanos);
            assert!(!span.outcome.is_empty());
        }
        let traces = service.drain_traces();
        assert!(!traces.is_empty(), "the service recorded worker-side traces too");
    }
}
