//! Load generation: configurable query mixes, concurrent clients and a
//! latency/throughput report.
//!
//! The generator builds a pool of *distinct* queries spanning every
//! collective kind and several topology families from
//! [`steady_platform::generators`] (the paper's figures, stars, a small
//! Tiers hierarchy, random connected platforms), then replays a long,
//! repetition-heavy random sequence drawn from that pool through a
//! [`Service`] from several client threads — the access pattern of a
//! deployment where many users ask about the same few platforms.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_platform::generators::{
    figure2, figure6, heterogeneous_star, random_connected, star, tiers, RandomConfig, TiersConfig,
};
use steady_platform::NodeId;
use steady_rational::rat;

use crate::engine::{ServeError, Service, ServiceStats};
use crate::query::{Collective, Query};
use crate::ServiceError;

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total number of queries to issue.
    pub queries: usize,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Size of the distinct-query pool the sequence is drawn from.
    pub distinct: usize,
    /// Seed for both the pool and the replay sequence.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { queries: 1000, clients: 4, distinct: 24, seed: 42 }
    }
}

/// Builds a pool of up to `distinct` queries cycling through eight families:
/// the Figure 2 scatter and Figure 6 reduce, star scatters, heterogeneous
/// star gathers, random-connected gossips and reduces, small Tiers reduces,
/// and a **cost-drift** family — one fixed star topology whose edge costs
/// are re-drawn per variant, the traffic shape of a deployment whose link
/// performance drifts over time.  Cost-drift variants are distinct cache
/// keys in one structural class, so they exercise the engine's warm-start
/// path: every variant after the first seeds its solve with the class basis.
/// Instances within a family vary in size and random seed; the fixed-figure
/// families repeat, so the pool is deduplicated by fingerprint before it is
/// returned — every entry is a genuinely distinct cache key and the reported
/// `distinct` count stays honest.
pub fn query_mix(distinct: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<Query> = (0..distinct)
        .map(|i| {
            let variant = (i / 8) as u64;
            match i % 8 {
                0 => {
                    let instance = figure2();
                    Query {
                        platform: instance.platform,
                        collective: Collective::Scatter {
                            source: instance.source,
                            targets: instance.targets,
                        },
                    }
                }
                1 => {
                    let instance = figure6();
                    Query {
                        platform: instance.platform,
                        collective: Collective::Reduce {
                            participants: instance.participants,
                            target: instance.target,
                            size: instance.message_size,
                            task_cost: instance.task_cost,
                        },
                    }
                }
                2 => {
                    let leaves = 3 + (variant as usize % 4);
                    let cost = rat(1, rng.gen_range(1i64..=4));
                    let (platform, root, leaves) = star(leaves, cost);
                    Query {
                        platform,
                        collective: Collective::Scatter { source: root, targets: leaves },
                    }
                }
                3 => {
                    let costs: Vec<_> = (0..3 + (variant as usize % 3))
                        .map(|_| rat(1, rng.gen_range(1i64..=5)))
                        .collect();
                    let (platform, center, leaves) = heterogeneous_star(&costs);
                    Query {
                        platform,
                        collective: Collective::Gather { sources: leaves, sink: center },
                    }
                }
                4 => {
                    let config = RandomConfig { nodes: 5, ..RandomConfig::default() };
                    let platform = random_connected(&config, &mut rng);
                    Query {
                        platform,
                        collective: Collective::Gossip {
                            sources: vec![NodeId(0), NodeId(1)],
                            targets: vec![NodeId(2), NodeId(3)],
                        },
                    }
                }
                5 => {
                    let config = RandomConfig {
                        nodes: 5 + (variant as usize % 2),
                        ..RandomConfig::default()
                    };
                    let platform = random_connected(&config, &mut rng);
                    let participants: Vec<NodeId> = platform.node_ids().collect();
                    Query {
                        platform,
                        collective: Collective::Reduce {
                            participants,
                            target: NodeId(0),
                            size: rat(1, 1),
                            task_cost: rat(1, 1),
                        },
                    }
                }
                6 => {
                    let config = TiersConfig {
                        wan_routers: 1,
                        man_per_wan: 1,
                        lan_per_man: 3,
                        ..TiersConfig::default()
                    };
                    let t = tiers(&config, &mut rng);
                    let target = t.hosts[0];
                    Query {
                        platform: t.platform,
                        collective: Collective::Reduce {
                            participants: t.hosts,
                            target,
                            size: rat(1, 1),
                            task_cost: rat(1, 1),
                        },
                    }
                }
                _ => {
                    // Cost drift: a fixed 4-leaf star whose edge costs are
                    // re-drawn per variant.  Every variant is a distinct cache
                    // key in one structural class, so all but the first
                    // exercise the warm-start path on their cold solve.
                    let costs: Vec<_> =
                        (0..4).map(|leaf| rat(1, 1 + ((variant as i64 * 5 + leaf) % 6))).collect();
                    let (platform, center, leaves) = heterogeneous_star(&costs);
                    Query {
                        platform,
                        collective: Collective::Scatter { source: center, targets: leaves },
                    }
                }
            }
        })
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    candidates.into_iter().filter(|q| seen.insert(q.fingerprint())).collect()
}

/// Outcome of a load run: sustained throughput, latency percentiles and the
/// service's counters at the end of the run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries issued (including any shed by admission control).
    pub queries: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Distinct queries in the pool.
    pub distinct: usize,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Sustained queries per second.
    pub queries_per_second: f64,
    /// Median response latency, in microseconds.
    pub p50_micros: f64,
    /// 95th-percentile response latency, in microseconds.
    pub p95_micros: f64,
    /// 99th-percentile response latency, in microseconds.
    pub p99_micros: f64,
    /// Cache hit ratio over this run's queries only.
    pub hit_ratio: f64,
    /// Service counter increments attributable to this run (traffic the
    /// service handled before the run is subtracted out); `cached_entries`
    /// is the gauge value at the end of the run.
    pub stats: ServiceStats,
}

impl LoadReport {
    /// Machine-readable one-object JSON summary (for `BENCH_service.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"queries\":{},\"clients\":{},\"distinct\":{},",
                "\"elapsed_seconds\":{:.6},\"queries_per_second\":{:.1},",
                "\"p50_micros\":{:.1},\"p95_micros\":{:.1},\"p99_micros\":{:.1},",
                "\"hit_ratio\":{:.4},\"hits\":{},\"misses\":{},\"coalesced\":{},",
                "\"solves\":{},\"warm_solves\":{},",
                "\"mean_warm_pivots\":{:.2},\"mean_cold_pivots\":{:.2},",
                "\"mean_warm_solve_micros\":{:.1},\"mean_cold_solve_micros\":{:.1},",
                "\"shed\":{},\"errors\":{},\"evictions\":{}}}"
            ),
            self.queries,
            self.clients,
            self.distinct,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.hit_ratio,
            self.stats.hits,
            self.stats.misses,
            self.stats.coalesced,
            self.stats.solves,
            self.stats.warm_solves,
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots(),
            self.stats.mean_warm_solve_micros(),
            self.stats.mean_cold_solve_micros(),
            self.stats.shed,
            self.stats.errors,
            self.stats.evictions,
        )
    }

    /// Human-readable multi-line rendering of the report.
    pub fn render(&self) -> String {
        format!(
            "queries            : {} ({} distinct, {} clients)\n\
             elapsed            : {:.3} s\n\
             queries/sec        : {:.1}\n\
             latency p50/p95/p99: {:.1} / {:.1} / {:.1} µs\n\
             cache hit ratio    : {:.1}% ({} hits, {} misses, {} evictions)\n\
             coalesced (dedup)  : {}\n\
             cold LP solves     : {} ({} warm-started, {} shed)\n\
             mean pivots        : {:.1} warm vs {:.1} cold\n\
             mean solve latency : {:.1} µs warm vs {:.1} µs cold\n",
            self.queries,
            self.distinct,
            self.clients,
            self.elapsed_seconds,
            self.queries_per_second,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.hit_ratio * 100.0,
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.coalesced,
            self.stats.solves,
            self.stats.warm_solves,
            self.stats.shed,
            self.stats.mean_warm_pivots(),
            self.stats.mean_cold_pivots(),
            self.stats.mean_warm_solve_micros(),
            self.stats.mean_cold_solve_micros(),
        )
    }
}

fn percentile_micros(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_nanos.len() - 1) as f64).round() as usize;
    sorted_nanos[rank] as f64 / 1_000.0
}

/// Replays `config.queries` queries drawn from [`query_mix`] through
/// `service` using `config.clients` concurrent client threads, and returns
/// the latency/throughput report.  Fails if any query fails; queries *shed*
/// by admission control are an accounted outcome, not a failure — they are
/// timed and counted like served ones (see [`ServiceStats::shed`]).
pub fn run_load(service: &Service, config: &LoadConfig) -> Result<LoadReport, ServiceError> {
    let mix = query_mix(config.distinct.max(1), config.seed);
    // Pre-draw the replay sequence so clients race only on the work counter.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6c6f_6164);
    let sequence: Vec<usize> = (0..config.queries).map(|_| rng.gen_range(0..mix.len())).collect();

    let next = AtomicUsize::new(0);
    let clients = config.clients.max(1);
    let before = service.stats();
    let started = Instant::now();
    let per_client: Vec<Result<Vec<u64>, ServiceError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                let mix = &mix;
                let sequence = &sequence;
                scope.spawn(move |_| {
                    let mut latencies = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= sequence.len() {
                            return Ok(latencies);
                        }
                        let query = mix[sequence[i]].clone();
                        let sent = Instant::now();
                        match service.query(query) {
                            Ok(_) | Err(ServeError::Shed) => {}
                            Err(ServeError::Failed(e)) => return Err(e),
                        }
                        latencies.push(sent.elapsed().as_nanos() as u64);
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
    .expect("a load client panicked");
    let elapsed = started.elapsed();

    let mut latencies = Vec::with_capacity(config.queries);
    for client in per_client {
        latencies.extend(client?);
    }
    latencies.sort_unstable();

    let stats = service.stats().since(&before);
    let elapsed_seconds = elapsed.as_secs_f64();
    Ok(LoadReport {
        queries: latencies.len(),
        clients,
        distinct: mix.len(),
        elapsed_seconds,
        queries_per_second: if elapsed_seconds > 0.0 {
            latencies.len() as f64 / elapsed_seconds
        } else {
            0.0
        },
        p50_micros: percentile_micros(&latencies, 0.50),
        p95_micros: percentile_micros(&latencies, 0.95),
        p99_micros: percentile_micros(&latencies, 0.99),
        hit_ratio: stats.hit_ratio(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_deduplicated_and_spans_kinds() {
        let a = query_mix(14, 9);
        let b = query_mix(14, 9);
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.fingerprint(), qb.fingerprint());
        }
        // The fixed-figure families repeat past one full cycle; duplicates
        // are dropped, and what remains is pairwise distinct.
        assert!(a.len() >= 7 && a.len() <= 14, "got {} queries", a.len());
        let fingerprints: std::collections::BTreeSet<_> =
            a.iter().map(|q| q.fingerprint()).collect();
        assert_eq!(fingerprints.len(), a.len(), "pool is deduplicated by fingerprint");
        let kinds: std::collections::BTreeSet<_> =
            a.iter().map(|q| q.collective.kind_name()).collect();
        assert!(kinds.len() >= 4, "mix spans several collective kinds: {kinds:?}");
    }

    #[test]
    fn every_mix_query_is_valid() {
        for query in query_mix(21, 3) {
            query.validate().expect("mix queries reference existing nodes");
        }
    }

    #[test]
    fn mix_contains_a_cost_drift_structural_class() {
        // The cost-drift family yields several distinct cache keys in one
        // structural class, so a load run actually exercises warm starts.
        let mix = query_mix(24, 42);
        let mut class_sizes = std::collections::BTreeMap::new();
        for query in &mix {
            *class_sizes.entry(query.structural_fingerprint()).or_insert(0usize) += 1;
        }
        assert!(
            class_sizes.values().any(|&n| n >= 2),
            "expected a structural class with several cost variants: {class_sizes:?}"
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = LoadReport {
            queries: 10,
            clients: 2,
            distinct: 3,
            elapsed_seconds: 0.5,
            queries_per_second: 20.0,
            p50_micros: 1.0,
            p95_micros: 2.0,
            p99_micros: 3.0,
            hit_ratio: 0.7,
            stats: ServiceStats::default(),
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_per_second\":20.0"));
        assert!(json.contains("\"hit_ratio\":0.7000"));
        assert!(!report.render().is_empty());
    }
}
