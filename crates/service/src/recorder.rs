//! The solver flight recorder: a bounded ring of the most anomalous solves
//! with their full pivot timelines.
//!
//! Per-solve event recording ([`steady_lp::RecordingObserver`]) is cheap but
//! not free, and keeping *every* timeline would make the observability layer
//! scale with traffic.  The flight recorder keeps only what a post-incident
//! investigation actually reads: solves that **fell back** off the certified
//! fast path, solves that **degraded to Bland's rule**, and solves that were
//! **anomalously slow** against the running average.  Everything else is
//! summarized into the always-on health histograms and forgotten.
//!
//! The ring has the exact never-block contract of [`crate::obs::TraceRing`]:
//! the hot-path [`SolveFlightRecorder::push`] `try_lock`s the buffer and
//! drops (counting) the record on contention, evicts (counting) the oldest
//! when full, and the conservation identity
//! `pushed == drained + buffered + dropped` always holds — model-checked by
//! the `solve_recorder_loses_nothing_uncounted` loom suite.  The buffer lock
//! is rank **55** in the [`crate::sync`] lock order: a strict leaf below
//! even the trace rings, acquired with no other lock held.

use std::collections::VecDeque;

use steady_lp::{SolveHealth, TimedEvent};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// How many samples the running solve-time average must have seen before the
/// "anomalously slow" classifier fires — early solves (cold caches, first
/// touches) would otherwise all look slow against a tiny baseline.
const SLOW_MIN_SAMPLES: u64 = 16;

/// A solve is "anomalously slow" when it exceeds this multiple of the
/// running average solve time.
const SLOW_FACTOR: u64 = 4;

/// One recorded anomalous solve: its identity, cost, health aggregate and
/// full pivot timeline.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// Canonical fingerprint of the query the solve answered.
    pub fingerprint: u64,
    /// Collective kind (`"scatter"`, ...).
    pub collective: &'static str,
    /// Triage rung of the solve (`"in-range"`, ..., `"resolve-cold"`).
    pub triage: &'static str,
    /// Why the recorder kept this solve: `"fell-back"`, `"bland"` or
    /// `"slow"` (the first matching reason, in that severity order).
    pub reason: &'static str,
    /// Wall-clock solve duration in [`crate::obs::Clock`] nanoseconds.
    pub solve_nanos: u64,
    /// The solve's health aggregate (pivot mix, eta fill, fallback cause).
    pub health: SolveHealth,
    /// The solve's timestamped event timeline (possibly truncated — see
    /// [`steady_lp::RecordingObserver`]).
    pub timeline: Vec<TimedEvent>,
    /// Events the timeline could not keep (recording capacity reached);
    /// they are still counted into `health`.
    pub truncated: usize,
}

/// A bounded, never-blocking ring of anomalous [`SolveRecord`]s.
///
/// See the module docs for the retention policy and the conservation
/// contract.  Pushers are expected to call [`SolveFlightRecorder::classify`]
/// first — it both maintains the running solve-time average (every solve,
/// anomalous or not) and decides whether a record is worth keeping.
#[derive(Debug)]
pub struct SolveFlightRecorder {
    /// Rank 55 in the lock order: the bottom-most leaf, below trace rings.
    recorder: Mutex<VecDeque<SolveRecord>>,
    capacity: usize,
    enabled: bool,
    pushed: AtomicU64,
    dropped: AtomicU64,
    /// Running sum of every classified solve's nanoseconds (not just kept
    /// ones), paired with `count` for the "slow" baseline.
    total_nanos: AtomicU64,
    count: AtomicU64,
}

impl SolveFlightRecorder {
    /// A recorder holding at most `capacity` (≥ 1) records.  When `enabled`
    /// is false, [`SolveFlightRecorder::classify`] returns `None` for every
    /// solve and the whole recording path costs one branch per solve.
    pub fn new(capacity: usize, enabled: bool) -> SolveFlightRecorder {
        let capacity = capacity.max(1);
        SolveFlightRecorder {
            recorder: Mutex::new(VecDeque::with_capacity(if enabled { capacity } else { 0 })),
            capacity,
            enabled,
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Whether solver event recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Folds one solve into the running average and decides whether it is
    /// anomalous: `Some("fell-back")` when the certified pipeline fell back,
    /// `Some("bland")` when pivoting degraded to Bland's rule,
    /// `Some("slow")` when the solve exceeded `SLOW_FACTOR`× the running
    /// average (after `SLOW_MIN_SAMPLES` solves), else `None`.
    pub fn classify(&self, solve_nanos: u64, health: &SolveHealth) -> Option<&'static str> {
        if !self.enabled {
            return None;
        }
        // relaxed: the slow-solve baseline is a heuristic over two monotone
        // tallies; a momentarily torn mean misclassifies at most one record
        // and affects no correctness property.
        let seen = self.count.fetch_add(1, Ordering::Relaxed);
        let prior_total = self.total_nanos.fetch_add(solve_nanos, Ordering::Relaxed);
        if health.fell_back() {
            return Some("fell-back");
        }
        if health.bland_switched() {
            return Some("bland");
        }
        if seen >= SLOW_MIN_SAMPLES && solve_nanos > SLOW_FACTOR * (prior_total / seen.max(1)) {
            return Some("slow");
        }
        None
    }

    /// Offers a record.  Never blocks: on lock contention the record is
    /// dropped; when full the **oldest** record is evicted.  Either loss
    /// increments the drop counter, so
    /// `pushed == drained + buffered + dropped` always holds.
    pub fn push(&self, record: SolveRecord) {
        // relaxed: monotone conservation tally; read only by collectors that
        // tolerate a momentarily stale count.
        self.pushed.fetch_add(1, Ordering::Relaxed);
        match self.recorder.try_lock() {
            Some(mut recorder) => {
                if recorder.len() == self.capacity {
                    recorder.pop_front();
                    // relaxed: see above.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                recorder.push_back(record);
            }
            None => {
                // relaxed: see above.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns every buffered record (collector side; blocks on
    /// the buffer lock, which pushers only ever `try_lock`).
    pub fn drain(&self) -> Vec<SolveRecord> {
        let mut recorder = self.recorder.lock();
        recorder.drain(..).collect()
    }

    /// Records offered since construction.
    pub fn pushed(&self) -> u64 {
        // relaxed: monotone tally, point-in-time read.
        self.pushed.load(Ordering::Relaxed)
    }

    /// Records lost to contention or eviction since construction.
    pub fn dropped(&self) -> u64 {
        // relaxed: monotone tally, point-in-time read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffered records right now.
    pub fn len(&self) -> usize {
        self.recorder.lock().len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fingerprint: u64, reason: &'static str, solve_nanos: u64) -> SolveRecord {
        SolveRecord {
            fingerprint,
            collective: "scatter",
            triage: "resolve-cold",
            reason,
            solve_nanos,
            health: SolveHealth::default(),
            timeline: Vec::new(),
            truncated: 0,
        }
    }

    #[test]
    fn disabled_recorder_classifies_nothing() {
        let rec = SolveFlightRecorder::new(4, false);
        assert!(!rec.enabled());
        let bad = SolveHealth {
            fallback: Some(steady_lp::FallbackCause::FloatFailed),
            ..SolveHealth::default()
        };
        assert_eq!(rec.classify(1_000_000, &bad), None);
    }

    #[test]
    fn fallback_and_bland_outrank_slow() {
        let rec = SolveFlightRecorder::new(4, true);
        let mut health = SolveHealth {
            fallback: Some(steady_lp::FallbackCause::FloatFailed),
            pivots: 10,
            bland_pivots: 3,
            ..SolveHealth::default()
        };
        assert_eq!(rec.classify(10, &health), Some("fell-back"));
        health.fallback = None;
        assert_eq!(rec.classify(10, &health), Some("bland"));
        health.bland_pivots = 0;
        assert_eq!(rec.classify(10, &health), None);
    }

    #[test]
    fn slow_classifier_needs_a_baseline_then_fires() {
        let rec = SolveFlightRecorder::new(4, true);
        let health = SolveHealth::default();
        // The very same outlier duration is not "slow" until the running
        // average has enough samples behind it.
        assert_eq!(rec.classify(1_000_000, &health), None);
        for _ in 0..SLOW_MIN_SAMPLES {
            assert_eq!(rec.classify(100, &health), None);
        }
        assert_eq!(rec.classify(1_000_000, &health), Some("slow"));
    }

    #[test]
    fn ring_evicts_oldest_and_conserves() {
        let rec = SolveFlightRecorder::new(2, true);
        for id in 0..5 {
            rec.push(record(id, "slow", 10));
        }
        assert_eq!(rec.pushed(), 5);
        assert_eq!(rec.dropped(), 3);
        let drained = rec.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].fingerprint, 3, "oldest must be evicted first");
        assert_eq!(drained[1].fingerprint, 4);
        assert!(rec.is_empty());
        // Conservation: pushed == drained + buffered + dropped.
        assert_eq!(rec.pushed(), drained.len() as u64 + rec.len() as u64 + rec.dropped());
    }
}
