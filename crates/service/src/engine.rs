//! The serving engine: a scheduler-generic worker pool with single-flight
//! deduplication, drift-triaged solves, TTL revalidation and requeue-based
//! admission control.
//!
//! Work dispatch is delegated to the `steady-sched` subsystem: queries are
//! admitted onto three strict priority lanes (demand > revalidation >
//! prefetch) and drained by the scheduler named in
//! [`ServiceConfig::scheduler`] — the classic thread-per-worker pool by
//! default, or the executor-backed work-stealing pool.  Both produce
//! identical answers; only *which thread runs which task when* differs.
//! Whatever the scheduler, a worker that picks up a query:
//!
//! 1. fingerprints the query and consults the [`SolutionCache`] at the
//!    current **epoch**: a fresh entry is served directly, an entry older
//!    than [`ServiceConfig::ttl`] epochs is kept as a *stale* fallback and
//!    routed to revalidation instead of being dropped;
//! 2. on a miss (or stale hit), checks the **in-flight table**: if an
//!    identical (isomorphic) query is already being solved, the reply
//!    channel is parked on that solve instead of stampeding the LP —
//!    *single-flight* deduplication;
//! 3. passes the **admission gate**: at most
//!    [`ServiceConfig::max_inflight_cold`] solves run concurrently; up to
//!    [`ServiceConfig::cold_queue`] more are **requeued** into the gate's
//!    pending queue — the worker returns to serving hit traffic immediately,
//!    and a slot-holder picks the job up when it releases its slot — and the
//!    excess is *shed* with [`ServeError::Shed`] (a shed *revalidation*
//!    falls back to its stale answer instead of an error);
//! 4. solves through the **drift triage ladder**
//!    ([`steady_drift::solve_steady_triaged`]) seeded with the cached
//!    [`SolvedBasis`] of the query's structural class (same topology and
//!    roles, any edge costs): a still-optimal basis re-prices with zero
//!    pivots (`in_range`), a primal-infeasible one is repaired by the dual
//!    simplex (`dual_repairs`), anything else resolves warm or cold — then
//!    publishes the answer and its final basis and fans the result out to
//!    every parked waiter.
//!
//! Workers with nothing to do don't just block: the **prefetch lane**
//! ([`Service::schedule_prefetch`]) holds platforms a forecaster predicts
//! the drift will produce next, and a worker takes one only when the demand
//! and revalidation lanes are empty, pre-solving it through the same triage
//! ladder and installing the answer as an ordinary epoch-stamped cache
//! entry.  A demand query that lands on one is counted as a
//! `prefetch_hit`; speculative work is strictly idle-time (lane priority
//! guarantees demand wins the workers) and strictly advisory (a wrong
//! prediction wastes idle cycles, never correctness — the entry it
//! installed is a *correct* answer to a question nobody asked).  Queued
//! prefetch work is also cancellable in bulk ([`Service::cancel_prefetch`])
//! and sheddable by deadline ([`ServiceConfig::demand_deadline`] puts a
//! per-task deadline on the demand lane instead).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use steady_core::problem::SolvedBasis;
use steady_platform::Platform;

use steady_drift::Triage;
use steady_sched::{Lane, LaneTask, NowFn, Running, SchedulerKind, WorkerHooks};

use crate::cache::{CacheConfig, CacheStats, Lookup, SolutionCache};
use crate::fingerprint::Fingerprint;
use crate::flight::{Flight, SingleFlight};
use crate::gate::{Admission, ColdGate};
use crate::ledger::PrefetchLedger;
use crate::metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
use crate::obs::{Clock, QueryTrace, TraceSink, WallClock};
use crate::persist;
use crate::query::{solve_prepared, Answer, Query};
use crate::recorder::{SolveFlightRecorder, SolveRecord};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::channel::{unbounded, Receiver, Sender};
use crate::sync::Mutex;
use crate::ServiceError;

/// Upper bound on remembered warm-start bases (one per structural class);
/// beyond it, new classes are simply not remembered.  A basis is a few
/// hundred `usize`s, so this caps the table at a few MB even under
/// adversarial traffic that never repeats a structure.
const MAX_CACHED_BASES: usize = 4096;

/// Per-solve event-timeline capacity when solver-event recording is on
/// ([`ServiceConfig::solver_events`]): events beyond this are folded into
/// the health aggregate but not kept (the recording marks itself truncated).
/// Big enough for any realistic pivot trail, small enough to bound a
/// pathological solve's memory.
const SOLVER_TIMELINE_CAPACITY: usize = 8192;

/// One unit of speculative work: a query a forecaster predicts the drift
/// will produce, pre-solved by idle workers (see
/// [`Service::schedule_prefetch`]).
#[derive(Debug, Clone)]
pub struct PrefetchJob {
    /// The predicted future query.
    pub query: Query,
    /// `true` when the forecaster expects this platform to *exit* the
    /// cached basis's optimality range (a repair-rung solve) — counted in
    /// [`ServiceStats::predicted_exits`].
    pub predicted_exit: bool,
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (0 means one per available CPU).
    pub workers: usize,
    /// Solution-cache sizing.
    pub cache: CacheConfig,
    /// Whether answers include an explicit periodic schedule (slower solves,
    /// richer answers).
    pub build_schedules: bool,
    /// Maximum number of cold LP solves running concurrently (0 = unlimited).
    /// Excess cold queries wait in a bounded queue or are shed.
    pub max_inflight_cold: usize,
    /// How many cold queries may wait for a solve slot when the gate is full
    /// (only meaningful with `max_inflight_cold > 0`); arrivals beyond this
    /// are shed with [`ServeError::Shed`].
    ///
    /// Waiting is **requeue-based**: a query that finds the gate full is
    /// parked in the gate's pending queue and its worker immediately returns
    /// to serving other traffic — a waiting cold query no longer occupies a
    /// worker thread.  Slot-holders drain the queue as they finish, so under
    /// a cold stampede up to `max_inflight_cold` workers are solving while
    /// every other worker keeps serving cache hits, whatever this bound is.
    /// Size it purely by how much cold *latency backlog* is acceptable: each
    /// pending query waits for the jobs ahead of it in the queue.
    pub cold_queue: usize,
    /// Cache time-to-live in **epochs** (see [`Service::advance_epoch`]):
    /// `None` means entries never expire; `Some(t)` keeps an entry fresh for
    /// `t` epochs beyond the one it was inserted in, after which lookups
    /// classify it as *expired* and route it through drift triage — the
    /// cached basis of its structural class revalidates it, usually with
    /// zero pivots — instead of dropping it.
    pub ttl: Option<u64>,
    /// Optional snapshot file (see [`Service::snapshot`]) whose entries are
    /// loaded into the cache on start, restoring the previous warm set.
    pub preload_from: Option<PathBuf>,
    /// Whether per-query lifecycle tracing is on (see [`crate::obs`]).  Off
    /// by default; the always-on metrics histograms do not depend on it.
    /// When off, the per-query cost of the tracing path is one branch.
    pub tracing: bool,
    /// Completed traces buffered per worker before the oldest is dropped
    /// (only meaningful with `tracing`); drops are counted, never blocking.
    pub trace_capacity: usize,
    /// Whether per-solve **solver event recording** is on (see
    /// [`steady_lp::instrument`] and [`crate::recorder`]).  Off by default;
    /// the always-on solver health histograms (pivot mix, eta fill,
    /// refactorizations) do not depend on it.  When on, every solve records
    /// its pivot timeline and the most anomalous solves (fell back, Bland
    /// switch, unusually slow) keep theirs in the solver flight recorder;
    /// traced queries additionally carry the solver's per-phase time
    /// breakdown into the Perfetto export.
    pub solver_events: bool,
    /// Anomalous solve records kept by the flight recorder before the
    /// oldest is evicted (only meaningful with `solver_events`); losses are
    /// counted, never blocking.
    pub solver_record_capacity: usize,
    /// Which scheduler drains the priority lanes (see [`steady_sched`]).
    /// The default, [`SchedulerKind::ThreadPerWorker`], is the engine's
    /// historical dispatch; [`SchedulerKind::WorkStealing`] runs every task
    /// on the executor shim with per-worker deques and stealing.  Answers
    /// are identical either way.
    pub scheduler: SchedulerKind,
    /// Optional per-task deadline for the demand lane: a query still queued
    /// this long after submission is shed (counted in
    /// [`ServiceStats::demand_timeouts`]) instead of run — bounding how
    /// stale a response a backlogged service can return.  `None` (the
    /// default) never sheds by age.
    pub demand_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache: CacheConfig::default(),
            build_schedules: false,
            max_inflight_cold: 0,
            cold_queue: 16,
            ttl: None,
            preload_from: None,
            tracing: false,
            trace_capacity: 4096,
            solver_events: false,
            solver_record_capacity: 64,
            scheduler: SchedulerKind::default(),
            demand_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the snapshot file to preload the cache from on start.
    pub fn preload(mut self, path: impl Into<PathBuf>) -> Self {
        self.preload_from = Some(path.into());
        self
    }

    /// Turns on per-query lifecycle tracing (see [`crate::obs`]).
    pub fn traced(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Turns on per-solve solver event recording (see [`crate::recorder`]).
    pub fn with_solver_events(mut self) -> Self {
        self.solver_events = true;
        self
    }

    /// Selects the scheduler that drains the priority lanes.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets a queueing deadline for demand queries (see
    /// [`ServiceConfig::demand_deadline`]).
    pub fn with_demand_deadline(mut self, deadline: Duration) -> Self {
        self.demand_deadline = Some(deadline);
        self
    }
}

/// How a particular response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// Found fresh in the solution cache.
    Cache,
    /// Solved by the responding worker (cold, warm or triaged).
    Solve,
    /// A TTL-expired cache entry revalidated through drift triage.
    Revalidated,
    /// Parked on another query's in-flight solve (single-flight dedup).
    Coalesced,
    /// A TTL-expired entry served as-is because its revalidation was shed
    /// by admission control — stale data beats no data.
    StaleFallback,
}

impl ServedVia {
    /// Short lowercase label, used for client spans in the trace export.
    pub fn name(&self) -> &'static str {
        match self {
            ServedVia::Cache => "cache",
            ServedVia::Solve => "solve",
            ServedVia::Revalidated => "revalidated",
            ServedVia::Coalesced => "coalesced",
            ServedVia::StaleFallback => "stale-fallback",
        }
    }
}

/// A successful response: the (shared) answer plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Served {
    /// The answer, shared with the cache and any coalesced waiters.
    pub answer: Arc<Answer>,
    /// How this particular response was produced.
    pub via: ServedVia,
}

/// Why a query was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was invalid, the problem infeasible, or the solve failed.
    Failed(ServiceError),
    /// The query needed a cold solve but the admission gate was saturated
    /// (see [`ServiceConfig::max_inflight_cold`]): the service chose to shed
    /// it rather than degrade cached traffic.  Retrying later is reasonable —
    /// nothing is wrong with the query itself.
    Shed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Failed(e) => write!(f, "{e}"),
            ServeError::Shed => write!(f, "shed under cold-solve overload"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServiceError> for ServeError {
    fn from(e: ServiceError) -> Self {
        ServeError::Failed(e)
    }
}

/// Result type delivered on a response channel.
pub type ServeResult = Result<Served, ServeError>;

/// Counters describing a service's traffic so far.  Cache counters are
/// folded in: `hits + misses == queries` for well-formed queries (coalesced
/// queries count as misses — they reached the in-flight table).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted by workers.
    pub queries: u64,
    /// Responses served straight from the cache.
    pub hits: u64,
    /// Cache lookups that found nothing.
    pub misses: u64,
    /// Queries parked on an identical in-flight solve.
    pub coalesced: u64,
    /// Cold LP solves attempted (successful or not).
    pub solves: u64,
    /// Successful solves warm-started from a cached structural-class basis
    /// that installed cleanly (`in_range + dual_repairs +` warm resolves).
    pub warm_solves: u64,
    /// Successful from-scratch solves (no usable basis for the structural
    /// class).  `warm_solves + cold_solves <= solves`; the difference is
    /// failed attempts, which record neither pivots nor latency.
    pub cold_solves: u64,
    /// Solves that entered drift triage with a prior basis for their
    /// structural class — the denominator of the basis-reuse fraction.
    pub triaged: u64,
    /// Triaged solves whose cached basis was still optimal: the answer was
    /// re-priced with **zero pivots**.
    pub in_range: u64,
    /// Triaged solves repaired in place by the dual simplex.
    pub dual_repairs: u64,
    /// Cache lookups that found a TTL-expired entry (routed to
    /// revalidation; see [`ServiceConfig::ttl`]).
    pub expired: u64,
    /// Solves that revalidated an expired entry (as opposed to answering a
    /// brand-new fingerprint).
    pub revalidations: u64,
    /// Queries parked in the admission gate's pending queue instead of
    /// blocking a worker (requeue-based admission).
    pub requeued: u64,
    /// Expired entries served as-is because their revalidation was shed.
    pub stale_served: u64,
    /// Simplex pivots spent in warm-started solves.
    pub warm_pivots: u64,
    /// Simplex pivots spent in from-scratch solves.
    pub cold_pivots: u64,
    /// Wall-clock nanoseconds spent in warm-started solves.
    pub warm_solve_nanos: u64,
    /// Wall-clock nanoseconds spent in from-scratch solves.
    pub cold_solve_nanos: u64,
    /// Queries shed by cold-solve admission control.
    pub shed: u64,
    /// Error responses delivered (bad query, infeasible problem or panicked
    /// solve; coalesced waiters on a failed solve count once each).
    pub errors: u64,
    /// Speculative solves completed by idle workers and installed into the
    /// cache (see [`Service::schedule_prefetch`]).
    pub prefetched: u64,
    /// Demand queries answered from a prefetched entry (each prefetched
    /// entry counts at most once — its first demand landing; afterwards it
    /// is an ordinary cache entry).
    pub prefetch_hits: u64,
    /// Prefetched entries that a demand solve had to re-derive anyway (the
    /// entry was evicted or expired before any demand query landed on it).
    pub prefetch_wasted: u64,
    /// Scheduled prefetch jobs whose platform the forecaster predicted to
    /// exit the cached basis's optimality range.
    pub predicted_exits: u64,
    /// Demand queries shed because they out-waited
    /// [`ServiceConfig::demand_deadline`] in the queue.
    pub demand_timeouts: u64,
    /// Prefetch tasks cancelled (or dropped at shutdown/expiry) before they
    /// ran — see [`Service::cancel_prefetch`].
    pub prefetch_cancelled: u64,
    /// Tasks executed by a worker that stole them from a busy sibling
    /// (always 0 under the thread-per-worker scheduler).
    pub steals: u64,
    /// Evictions where the drift-aware preference overrode plain LRU (see
    /// [`CacheStats::preferred_evictions`]).
    pub preferred_evictions: u64,
    /// Answers inserted into the cache.
    pub insertions: u64,
    /// Cache entries displaced by LRU eviction.
    pub evictions: u64,
    /// Answers currently cached.
    pub cached_entries: usize,
}

impl ServiceStats {
    /// Fraction of cache lookups that hit (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        CacheStats { hits: self.hits, misses: self.misses, ..CacheStats::default() }.hit_ratio()
    }

    /// Mean simplex pivots per warm-started solve (0 when none ran).
    pub fn mean_warm_pivots(&self) -> f64 {
        mean(self.warm_pivots, self.warm_solves)
    }

    /// Mean simplex pivots per from-scratch solve (0 when none ran).
    pub fn mean_cold_pivots(&self) -> f64 {
        mean(self.cold_pivots, self.cold_solves)
    }

    /// Mean wall-clock microseconds per warm-started solve (0 when none ran).
    pub fn mean_warm_solve_micros(&self) -> f64 {
        mean(self.warm_solve_nanos, self.warm_solves) / 1_000.0
    }

    /// Mean wall-clock microseconds per from-scratch solve (0 when none ran).
    pub fn mean_cold_solve_micros(&self) -> f64 {
        mean(self.cold_solve_nanos, self.cold_solves) / 1_000.0
    }

    /// Fraction of triaged solves (those with a prior basis) that reused it
    /// via `InRange` or `DualRepair` — the drift pipeline's headline number
    /// (0 when nothing was triaged).
    pub fn triage_reuse_fraction(&self) -> f64 {
        if self.triaged == 0 {
            0.0
        } else {
            (self.in_range + self.dual_repairs) as f64 / self.triaged as f64
        }
    }

    /// Of the demand queries that needed fresh work (a solve or a prefetch
    /// landing), the fraction answered from a prefetched entry:
    /// `prefetch_hits / (prefetch_hits + solves)`, 0 when neither happened.
    /// This is the forecaster's headline number: how much of the drift was
    /// predicted off the critical path.
    pub fn prefetch_hit_fraction(&self) -> f64 {
        let total = self.prefetch_hits + self.solves;
        if total == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / total as f64
        }
    }

    /// Counter increments between the `earlier` snapshot and this one, for
    /// isolating one load run on a service that has already served traffic.
    /// `cached_entries` is a gauge, not a counter, and keeps this snapshot's
    /// value.
    pub fn since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            queries: self.queries.saturating_sub(earlier.queries),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            solves: self.solves.saturating_sub(earlier.solves),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
            triaged: self.triaged.saturating_sub(earlier.triaged),
            in_range: self.in_range.saturating_sub(earlier.in_range),
            dual_repairs: self.dual_repairs.saturating_sub(earlier.dual_repairs),
            expired: self.expired.saturating_sub(earlier.expired),
            revalidations: self.revalidations.saturating_sub(earlier.revalidations),
            requeued: self.requeued.saturating_sub(earlier.requeued),
            stale_served: self.stale_served.saturating_sub(earlier.stale_served),
            warm_pivots: self.warm_pivots.saturating_sub(earlier.warm_pivots),
            cold_pivots: self.cold_pivots.saturating_sub(earlier.cold_pivots),
            warm_solve_nanos: self.warm_solve_nanos.saturating_sub(earlier.warm_solve_nanos),
            cold_solve_nanos: self.cold_solve_nanos.saturating_sub(earlier.cold_solve_nanos),
            shed: self.shed.saturating_sub(earlier.shed),
            errors: self.errors.saturating_sub(earlier.errors),
            prefetched: self.prefetched.saturating_sub(earlier.prefetched),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            prefetch_wasted: self.prefetch_wasted.saturating_sub(earlier.prefetch_wasted),
            predicted_exits: self.predicted_exits.saturating_sub(earlier.predicted_exits),
            demand_timeouts: self.demand_timeouts.saturating_sub(earlier.demand_timeouts),
            prefetch_cancelled: self.prefetch_cancelled.saturating_sub(earlier.prefetch_cancelled),
            steals: self.steals.saturating_sub(earlier.steals),
            preferred_evictions: self
                .preferred_evictions
                .saturating_sub(earlier.preferred_evictions),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            cached_entries: self.cached_entries,
        }
    }
}

fn mean(total: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

struct Job {
    query: Query,
    reply: Sender<ServeResult>,
    /// When the query entered the submit channel ([`Clock`] nanoseconds);
    /// always stamped, because the queue-wait and end-to-end histograms are
    /// on whether or not per-query tracing is.
    submitted_nanos: u64,
    /// The query's lifecycle trace — `None` when tracing is off, so the
    /// disabled path allocates nothing and costs one branch.
    trace: Option<QueryTrace>,
}

/// A validated, fingerprinted query that needs a solve (cache miss or TTL
/// revalidation), holding leadership of its in-flight entry.  This is the
/// unit the admission gate queues on requeue: parking it costs a queue slot,
/// not a worker thread.
struct SolveJob {
    job: Job,
    fingerprint: Fingerprint,
    /// The expired answer this solve revalidates, if any — served as the
    /// fallback when the solve is shed, and the reason the leader's response
    /// is labelled [`ServedVia::Revalidated`].
    stale: Option<Arc<Answer>>,
    /// When the job reached the admission gate; the gate-wait histogram is
    /// the difference to the solve start, zero-ish unless the gate queued.
    gate_enter_nanos: u64,
}

/// A query parked on another query's in-flight solve.  The platform is kept
/// so the fan-out can strip the schedule when the waiter's numbering differs
/// from the solver's (see [`tailor`]).
struct Waiter {
    platform: Platform,
    reply: Sender<ServeResult>,
    /// See [`Job::submitted_nanos`]; feeds the coalesced end-to-end
    /// histogram at fan-out.
    submitted_nanos: u64,
    /// The parked query's trace, completed by the solving worker.
    trace: Option<QueryTrace>,
}

/// Adapts a shared answer to one caller: schedules are expressed in the node
/// numbering of the platform they were solved on, so a caller holding an
/// isomorphic but differently numbered platform gets the answer with the
/// schedule stripped (throughput is numbering-invariant and always served).
fn tailor(answer: &Arc<Answer>, platform: &Platform) -> Arc<Answer> {
    if answer.schedule.is_none() || answer.platform == *platform {
        Arc::clone(answer)
    } else {
        Arc::new(Answer {
            fingerprint: answer.fingerprint,
            platform: answer.platform.clone(),
            throughput: answer.throughput.clone(),
            schedule: None,
        })
    }
}

/// What the scheduler dispatches: the engine's one work-item type, with one
/// variant per lane.  (The idle-detection and prefetch-drain machinery that
/// used to live here — `PrefetchIdle` and the idle-poll loop — moved into
/// `steady-sched`'s reusable `lane` module, shared by both schedulers.)
enum WorkItem {
    /// An interactive query (demand lane).
    Demand(Job),
    /// A proactive TTL refresh (revalidation lane): an ordinary serve whose
    /// reply nobody listens to, scheduled by
    /// [`Service::schedule_revalidation`].
    Revalidate(Job),
    /// A speculative pre-solve (prefetch lane).
    Prefetch(PrefetchJob),
}

/// The per-stage latency histograms, always on (recording is one relaxed
/// atomic add; see [`crate::metrics`]).  All samples are [`Clock`]
/// nanoseconds.  Stage spans are adjacent — queue → lookup → (gate) →
/// solve → publish — so a query's stage samples sum to its end-to-end
/// latency within clock resolution.
struct StageMetrics {
    /// Submit-to-pickup wait: submit → worker pickup (every query).
    queue_wait: Arc<Histogram>,
    /// Demand-lane wait: enqueue → scheduler pickup, per lane.  Same span
    /// as `queue_wait` for demand traffic, but split by lane so priority
    /// inversion (prefetch delaying demand) is directly visible.
    lane_demand_wait: Arc<Histogram>,
    /// Revalidation-lane wait (see `lane_demand_wait`).
    lane_revalidation_wait: Arc<Histogram>,
    /// Prefetch-lane wait (see `lane_demand_wait`).
    lane_prefetch_wait: Arc<Histogram>,
    /// Fingerprint + cache lookup (every well-formed query).
    lookup: Arc<Histogram>,
    /// Admission-gate wait: gate entry → solve start (solved queries; near
    /// zero unless the gate queued the job).
    gate_wait: Arc<Histogram>,
    /// Warm-started solves (triage reused or reseeded a basis).
    solve_warm: Arc<Histogram>,
    /// From-scratch solves.
    solve_cold: Arc<Histogram>,
    /// Basis/cache publication and reply fan-out.
    publish: Arc<Histogram>,
    /// End-to-end latency of cache hits (fresh or flight-ready).
    e2e_hit: Arc<Histogram>,
    /// End-to-end latency of queries answered by a warm solve.
    e2e_warm: Arc<Histogram>,
    /// End-to-end latency of queries answered by a cold solve.
    e2e_cold: Arc<Histogram>,
    /// End-to-end latency of queries coalesced onto another solve.
    e2e_coalesced: Arc<Histogram>,
    /// Simplex pivots per successful solve (all phases; from the solver's
    /// event-stream health aggregate, so it is always on).
    solver_pivots: Arc<Histogram>,
    /// Degenerate (zero-progress) pivots per successful solve.
    solver_degenerate_pivots: Arc<Histogram>,
    /// Pivots taken under Bland's anti-cycling rule per successful solve
    /// (non-zero samples mean pricing degraded off Dantzig's rule).
    solver_bland_pivots: Arc<Histogram>,
    /// Peak eta-file length per successful solve (0 on the dense route).
    solver_peak_eta: Arc<Histogram>,
    /// Basis refactorizations per successful solve (0 on the dense route).
    solver_refactorizations: Arc<Histogram>,
}

impl StageMetrics {
    fn new(registry: &MetricsRegistry) -> StageMetrics {
        StageMetrics {
            queue_wait: registry.histogram("stage_queue_wait_nanos"),
            lane_demand_wait: registry.histogram("lane_demand_wait_nanos"),
            lane_revalidation_wait: registry.histogram("lane_revalidation_wait_nanos"),
            lane_prefetch_wait: registry.histogram("lane_prefetch_wait_nanos"),
            lookup: registry.histogram("stage_lookup_nanos"),
            gate_wait: registry.histogram("stage_gate_wait_nanos"),
            solve_warm: registry.histogram("stage_solve_warm_nanos"),
            solve_cold: registry.histogram("stage_solve_cold_nanos"),
            publish: registry.histogram("stage_publish_nanos"),
            e2e_hit: registry.histogram("e2e_hit_nanos"),
            e2e_warm: registry.histogram("e2e_solve_warm_nanos"),
            e2e_cold: registry.histogram("e2e_solve_cold_nanos"),
            e2e_coalesced: registry.histogram("e2e_coalesced_nanos"),
            solver_pivots: registry.histogram("solver_pivots"),
            solver_degenerate_pivots: registry.histogram("solver_degenerate_pivots"),
            solver_bland_pivots: registry.histogram("solver_bland_pivots"),
            solver_peak_eta: registry.histogram("solver_peak_eta"),
            solver_refactorizations: registry.histogram("solver_refactorizations"),
        }
    }

    /// Records one task's enqueue-to-pickup wait in its lane's histogram.
    fn record_lane_wait(&self, lane: Lane, nanos: u64) {
        match lane {
            Lane::Demand => self.lane_demand_wait.record(nanos),
            Lane::Revalidation => self.lane_revalidation_wait.record(nanos),
            Lane::Prefetch => self.lane_prefetch_wait.record(nanos),
        }
    }

    /// Folds one successful solve's health aggregate into the solver
    /// histograms (always on: the aggregate rides every
    /// [`steady_drift::TriageReport`]).
    fn record_solver_health(&self, health: &steady_lp::SolveHealth) {
        self.solver_pivots.record(health.pivots as u64);
        self.solver_degenerate_pivots.record(health.degenerate_pivots as u64);
        self.solver_bland_pivots.record(health.bland_pivots as u64);
        self.solver_peak_eta.record(health.peak_eta as u64);
        self.solver_refactorizations.record(health.refactorizations as u64);
    }
}

struct Shared {
    cache: SolutionCache,
    /// Single-flight deduplication: at most one in-flight solve per key,
    /// with the waiters parked on it (see [`crate::flight`]).
    flight: SingleFlight<Waiter>,
    /// Winning basis per structural class (cost-blind fingerprint), used to
    /// triage every solve of a platform that differs only in edge costs.
    bases: Mutex<HashMap<u64, SolvedBasis>>,
    /// Cold-solve admission control (see [`crate::gate`]).
    gate: ColdGate<SolveJob>,
    build_schedules: bool,
    /// Current cache epoch; advanced by [`Service::advance_epoch`].
    epoch: AtomicU64,
    /// Cache TTL in epochs (see [`ServiceConfig::ttl`]).
    ttl: Option<u64>,
    /// The time source every timestamp and histogram sample derives from —
    /// the seam where a simulated clock plugs in
    /// ([`Service::start_with_clock`]).
    clock: Arc<dyn Clock>,
    /// Per-worker rings of completed query traces (see [`crate::obs`]).
    sink: TraceSink,
    /// The solver flight recorder: pivot timelines of the most anomalous
    /// solves (see [`crate::recorder`]); disabled unless
    /// [`ServiceConfig::solver_events`] is set.
    recorder: SolveFlightRecorder,
    /// Always-on per-stage latency histograms.
    stage: StageMetrics,
    /// The registry the stage histograms live in, snapshotted by
    /// [`Service::metrics`].
    registry: MetricsRegistry,
    /// Cache keys installed by speculative solves that no demand query has
    /// landed on yet; a demand hit claims a key as a `prefetch_hit`, a
    /// demand *solve* claims it as `prefetch_wasted` (see [`crate::ledger`]).
    ledger: PrefetchLedger,
    queries: AtomicU64,
    coalesced: AtomicU64,
    solves: AtomicU64,
    prefetched: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
    predicted_exits: AtomicU64,
    warm_solves: AtomicU64,
    cold_solves: AtomicU64,
    triaged: AtomicU64,
    in_range: AtomicU64,
    dual_repairs: AtomicU64,
    revalidations: AtomicU64,
    requeued: AtomicU64,
    stale_served: AtomicU64,
    warm_pivots: AtomicU64,
    cold_pivots: AtomicU64,
    warm_solve_nanos: AtomicU64,
    cold_solve_nanos: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    /// The current cache epoch.
    fn now(&self) -> u64 {
        // relaxed: the epoch is a monotonically advanced stamp and workers
        // only need *some* recent value — a lagging read makes an entry look
        // at most one advance older, which TTL semantics tolerate by design.
        self.epoch.load(Ordering::Relaxed)
    }
}

/// Increments a monotonic statistics counter.
fn bump(counter: &AtomicU64) {
    bump_by(counter, 1);
}

/// Adds `n` to a monotonic statistics counter.
fn bump_by(counter: &AtomicU64, n: u64) {
    // relaxed: stat counters are independent monotonic tallies read only by
    // `stats()` snapshots, which tolerate small cross-counter skew; nothing
    // synchronizes-with them.
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Reads a statistics counter for a snapshot.
fn gauge(counter: &AtomicU64) -> u64 {
    // relaxed: point-in-time snapshot read of an independent counter (see
    // `bump_by`); no ordering with other memory is implied or needed.
    counter.load(Ordering::Relaxed)
}

/// The engine's side of the scheduler seam: `steady-sched` owns the lanes
/// and the worker threads, and calls back in here when a task reaches (or
/// terminally misses) a worker.
struct EngineWorker {
    shared: Arc<Shared>,
}

impl EngineWorker {
    /// Replies to a demand/revalidation job whose task never ran (deadline
    /// passed or lane cancelled) with [`ServeError::Shed`] — the same
    /// contract as admission-control shedding: nothing is wrong with the
    /// query, the service chose not to run it.
    fn shed_unrun(&self, worker: usize, job: Job, outcome: &'static str) {
        let shared = &self.shared;
        finish_trace_at(shared, worker as u32, job.trace, outcome, shared.clock.now_nanos());
        let _ = job.reply.send(Err(ServeError::Shed));
    }
}

impl WorkerHooks<WorkItem> for EngineWorker {
    fn run(&self, worker: usize, task: LaneTask<WorkItem>) {
        let shared = &self.shared;
        let picked_up = shared.clock.now_nanos();
        shared.stage.record_lane_wait(task.lane, picked_up.saturating_sub(task.enqueued_nanos));
        let lane = task.lane;
        match task.payload {
            WorkItem::Demand(mut job) | WorkItem::Revalidate(mut job) => {
                if let Some(t) = job.trace.as_mut() {
                    t.lane = lane.name();
                }
                // A panicking solve must not shrink the pool: contain it
                // here (the scheduler contains it too, but the engine owns
                // the reply contract).  The panicking job's reply sender is
                // dropped during unwinding, so its caller sees a disconnect
                // rather than a hang; parked waiters are released by the
                // in-flight drop guard inside `serve`.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve(shared, worker as u32, job)
                }));
            }
            WorkItem::Prefetch(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    prefetch_one(shared, worker as u32, job);
                }));
            }
        }
    }

    fn timed_out(&self, worker: usize, task: LaneTask<WorkItem>) {
        match task.payload {
            WorkItem::Demand(job) | WorkItem::Revalidate(job) => {
                self.shed_unrun(worker, job, "deadline");
            }
            // An expired speculation is just dropped; the scheduler already
            // counted it.
            WorkItem::Prefetch(_) => {}
        }
    }

    fn cancelled(&self, worker: usize, task: LaneTask<WorkItem>) {
        match task.payload {
            WorkItem::Demand(job) | WorkItem::Revalidate(job) => {
                self.shed_unrun(worker, job, "cancelled");
            }
            WorkItem::Prefetch(_) => {}
        }
    }
}

/// A running query-serving engine.  Dropping the service closes the lanes
/// (queued demand still drains; queued speculation is dropped) and joins
/// every worker.
pub struct Service {
    running: Box<dyn Running<WorkItem>>,
    scheduler: SchedulerKind,
    demand_deadline: Option<Duration>,
    shared: Arc<Shared>,
}

impl Service {
    /// Starts the worker pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when [`ServiceConfig::preload_from`] points to an unreadable or
    /// malformed snapshot — a serving process is better off failing fast than
    /// silently starting with an empty cache.  Use [`Service::preload`] after
    /// a plain start for a fallible reload.
    pub fn start(config: ServiceConfig) -> Service {
        Service::start_with_clock(config, Arc::new(WallClock::new()))
    }

    /// [`Service::start`] with an explicit time source.
    ///
    /// Every lifecycle timestamp and latency-histogram sample the service
    /// records is a difference of `clock` readings, so this is the seam
    /// where a simulated clock plugs in: a deterministic clock makes the
    /// whole observability layer reproducible without touching the engine.
    ///
    /// # Panics
    ///
    /// As [`Service::start`].
    pub fn start_with_clock(config: ServiceConfig, clock: Arc<dyn Clock>) -> Service {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let registry = MetricsRegistry::new();
        let stage = StageMetrics::new(&registry);
        let shared = Arc::new(Shared {
            cache: SolutionCache::new(&config.cache),
            flight: SingleFlight::new(),
            bases: Mutex::new(HashMap::new()),
            gate: ColdGate::new(config.max_inflight_cold, config.cold_queue),
            build_schedules: config.build_schedules,
            epoch: AtomicU64::new(0),
            ttl: config.ttl,
            clock,
            sink: TraceSink::new(workers, config.trace_capacity, config.tracing),
            recorder: SolveFlightRecorder::new(config.solver_record_capacity, config.solver_events),
            stage,
            registry,
            ledger: PrefetchLedger::new(),
            queries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            prefetch_hits: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
            predicted_exits: AtomicU64::new(0),
            warm_solves: AtomicU64::new(0),
            cold_solves: AtomicU64::new(0),
            triaged: AtomicU64::new(0),
            in_range: AtomicU64::new(0),
            dual_repairs: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            warm_pivots: AtomicU64::new(0),
            cold_pivots: AtomicU64::new(0),
            warm_solve_nanos: AtomicU64::new(0),
            cold_solve_nanos: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let now: NowFn = {
            let clock = Arc::clone(&shared.clock);
            Arc::new(move || clock.now_nanos())
        };
        let hooks = Arc::new(EngineWorker { shared: Arc::clone(&shared) });
        let running = config.scheduler.build::<WorkItem>().start(workers, hooks, now);
        let service = Service {
            running,
            scheduler: config.scheduler,
            demand_deadline: config.demand_deadline,
            shared,
        };
        if let Some(path) = &config.preload_from {
            // lint: allow(panics) — documented fail-fast at startup.
            service.preload(path).expect("preloading the configured snapshot");
        }
        service
    }

    /// Enqueues `query` on the demand lane and returns the channel its
    /// response will arrive on.  If the service is shutting down, the
    /// returned channel reports a disconnect instead of a response (mapped
    /// to an error by [`Service::query`]).
    pub fn submit(&self, query: Query) -> Receiver<ServeResult> {
        let (reply, response) = unbounded();
        let submitted_nanos = self.shared.clock.now_nanos();
        let trace = self.shared.sink.begin(submitted_nanos);
        let mut task = LaneTask::new(
            WorkItem::Demand(Job { query, reply, submitted_nanos, trace }),
            Lane::Demand,
            submitted_nanos,
        );
        if let Some(deadline) = self.demand_deadline {
            task = task.with_deadline(submitted_nanos.saturating_add(deadline.as_nanos() as u64));
        }
        // A rejected submit means the lanes are closed (shutdown); the
        // caller then observes the reply channel disconnect.
        let _ = self.running.submit(task);
        response
    }

    /// Submits `query` and blocks until its response arrives.
    pub fn query(&self, query: Query) -> ServeResult {
        self.submit(query).recv().map_err(|_| {
            ServeError::Failed(ServiceError("the service shut down before responding".into()))
        })?
    }

    /// Schedules speculative work: each job's query is pre-solved by an
    /// **idle** worker (one that found the job channel empty) through the
    /// ordinary drift-triage ladder, and its answer installed as a normal
    /// epoch-stamped cache entry.  Returns how many jobs were queued.
    ///
    /// Speculation is advisory end to end: demand traffic always wins the
    /// workers, a duplicate of an in-flight or already-cached query is
    /// dropped on pickup, and a pre-solved answer is bit-identical to what
    /// a demand solve would have produced (same triage ladder, exact
    /// arithmetic).  Callers typically build the jobs from a
    /// `steady-forecast` [`PresolvePlan`](steady_forecast::PresolvePlan).
    pub fn schedule_prefetch(&self, jobs: impl IntoIterator<Item = PrefetchJob>) -> usize {
        let mut queued = 0usize;
        for job in jobs {
            let predicted_exit = job.predicted_exit;
            let enqueued = self.shared.clock.now_nanos();
            if self.running.submit(LaneTask::new(WorkItem::Prefetch(job), Lane::Prefetch, enqueued))
            {
                // Counted only for accepted jobs, so the stat matches the
                // returned queue count even across a racing shutdown.
                if predicted_exit {
                    bump(&self.shared.predicted_exits);
                }
                queued += 1;
            }
        }
        queued
    }

    /// Schedules proactive TTL refreshes on the **revalidation lane**: each
    /// query is served exactly like a demand query — expired entries
    /// revalidate through drift triage, misses solve — but nobody waits on
    /// the reply, and the work runs only when the demand lane is empty.
    /// Returns how many refreshes were queued.
    pub fn schedule_revalidation(&self, queries: impl IntoIterator<Item = Query>) -> usize {
        let mut queued = 0usize;
        for query in queries {
            let (reply, _discard) = unbounded();
            let submitted_nanos = self.shared.clock.now_nanos();
            let trace = self.shared.sink.begin(submitted_nanos);
            let task = LaneTask::new(
                WorkItem::Revalidate(Job { query, reply, submitted_nanos, trace }),
                Lane::Revalidation,
                submitted_nanos,
            );
            if self.running.submit(task) {
                queued += 1;
            }
        }
        queued
    }

    /// Cancels every prefetch job still queued (already-running solves
    /// finish; cancellation is cooperative).  Returns how many were
    /// cancelled — also visible as [`ServiceStats::prefetch_cancelled`].
    /// The hook for a forecaster that changes its mind: a superseded plan
    /// is withdrawn in O(queue) instead of being speculatively solved.
    pub fn cancel_prefetch(&self) -> usize {
        self.running.cancel_lane(Lane::Prefetch)
    }

    /// Background (prefetch + revalidation) jobs not yet finished (queued
    /// plus currently solving) — also exposed as the `prefetch_backlog`
    /// gauge of [`Service::metrics`].
    pub fn prefetch_backlog(&self) -> usize {
        self.running.backlog()
    }

    /// Blocks until every scheduled background (prefetch + revalidation)
    /// job has finished (or been dropped as a duplicate or cancelled), up
    /// to `timeout`.  Returns `true` when the backlog reached zero — the
    /// deterministic hand-off point for benchmarks that schedule a plan and
    /// then replay the predicted traffic.  The wait is a condvar signaled
    /// when the last job retires, not a poll loop.
    pub fn await_prefetch_idle(&self, timeout: Duration) -> bool {
        self.running.await_background_idle(timeout)
    }

    /// The cached warm-start basis of structural class `class` (the
    /// cost-blind fingerprint of a query's platform), if the service has
    /// solved that class before.  This is what a forecaster certifies
    /// against.
    pub fn class_basis(&self, class: u64) -> Option<SolvedBasis> {
        self.shared.bases.lock().get(&class).cloned()
    }

    /// Advances the cache epoch by one and returns the new epoch.
    ///
    /// Under a [`ServiceConfig::ttl`] of `Some(t)`, entries inserted more
    /// than `t` epochs ago become *expired*: still cached, but revalidated
    /// through drift triage on their next lookup.  Call this on whatever
    /// cadence matches the deployment's cost-drift rate (e.g. once per
    /// monitoring interval); with a `ttl` of `None` the epoch is
    /// bookkeeping only.
    pub fn advance_epoch(&self) -> u64 {
        // relaxed: a monotone counter advanced by one caller at a time in
        // practice; workers read it as an age stamp and tolerate lag (see
        // `Shared::now`).  The fetch_add itself is still atomic, so
        // concurrent advances never lose a tick.
        self.shared.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current cache epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.now()
    }

    /// Writes the cache's `fingerprint → throughput` entries **and** the
    /// per-structural-class simplex basis seeds to `path` as a JSON snapshot
    /// (see [`crate::persist`]), returning how many cache entries were
    /// written.  Schedules are not persisted — restored entries answer with
    /// `schedule: None`, like any isomorphic cache hit.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> Result<usize, ServiceError> {
        let entries: Vec<persist::SnapshotEntry> = self
            .shared
            .cache
            .entries()
            .into_iter()
            .map(|(key, answer)| (key, answer.throughput.clone()))
            .collect();
        let bases: Vec<persist::BasisEntry> =
            self.shared.bases.lock().iter().map(|(&class, basis)| (class, basis.clone())).collect();
        persist::write_snapshot(&entries, &bases, path.as_ref())?;
        Ok(entries.len())
    }

    /// Loads a snapshot written by [`Service::snapshot`] into the cache and
    /// returns how many entries were inserted.
    ///
    /// Snapshots persist only `fingerprint → throughput`, so a restored
    /// [`Answer`] carries an **empty** [`Answer::platform`] and no schedule;
    /// consumers reading those fields must treat restored hits like
    /// isomorphic-but-renumbered ones (exact throughput, nothing
    /// numbering-dependent).  Restored entries are stamped with the current
    /// epoch.  Persisted basis seeds are merged into the per-class basis
    /// table, so the very first drifted solve after a restart triages
    /// against its class's last known basis instead of going cold.
    pub fn preload(&self, path: impl AsRef<Path>) -> Result<usize, ServiceError> {
        let (entries, bases) = persist::read_snapshot(path.as_ref())?;
        let count = entries.len();
        let epoch = self.epoch();
        for (key, throughput) in entries {
            let answer = Answer {
                fingerprint: Fingerprint(key),
                // The platform a snapshot entry was solved on is gone; an
                // empty stand-in is fine because restored answers carry no
                // schedule, the only platform-numbering-sensitive payload.
                platform: Platform::new(),
                throughput,
                schedule: None,
            };
            // A snapshot does not record which structural class an entry
            // belongs to, so restored entries carry no class and are
            // preferred eviction victims until re-solved.
            self.shared.cache.insert_at(key, Arc::new(answer), epoch, None);
        }
        for (class, basis) in bases {
            publish_basis(&self.shared, class, basis);
        }
        Ok(count)
    }

    /// A snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = self.shared.cache.stats();
        let lanes = self.running.counters();
        ServiceStats {
            queries: gauge(&self.shared.queries),
            hits: cache.hits,
            misses: cache.misses,
            coalesced: gauge(&self.shared.coalesced),
            solves: gauge(&self.shared.solves),
            warm_solves: gauge(&self.shared.warm_solves),
            cold_solves: gauge(&self.shared.cold_solves),
            triaged: gauge(&self.shared.triaged),
            in_range: gauge(&self.shared.in_range),
            dual_repairs: gauge(&self.shared.dual_repairs),
            expired: cache.stale,
            revalidations: gauge(&self.shared.revalidations),
            requeued: gauge(&self.shared.requeued),
            stale_served: gauge(&self.shared.stale_served),
            warm_pivots: gauge(&self.shared.warm_pivots),
            cold_pivots: gauge(&self.shared.cold_pivots),
            warm_solve_nanos: gauge(&self.shared.warm_solve_nanos),
            cold_solve_nanos: gauge(&self.shared.cold_solve_nanos),
            shed: gauge(&self.shared.shed),
            errors: gauge(&self.shared.errors),
            prefetched: gauge(&self.shared.prefetched),
            prefetch_hits: gauge(&self.shared.prefetch_hits),
            prefetch_wasted: gauge(&self.shared.prefetch_wasted),
            predicted_exits: gauge(&self.shared.predicted_exits),
            demand_timeouts: lanes.demand_timeouts,
            prefetch_cancelled: lanes.prefetch_cancelled(),
            steals: lanes.steals,
            preferred_evictions: cache.preferred_evictions,
            insertions: cache.insertions,
            evictions: cache.evictions,
            cached_entries: self.shared.cache.len(),
        }
    }

    /// A point-in-time metrics snapshot: every [`ServiceStats`] counter,
    /// the live gauges and the per-stage latency histograms, renderable as
    /// hand-rolled JSON ([`MetricsSnapshot::to_json`]) or Prometheus text
    /// exposition ([`MetricsSnapshot::to_prometheus`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let mut snap = self.shared.registry.snapshot();
        snap.push_counter("queries", stats.queries);
        snap.push_counter("hits", stats.hits);
        snap.push_counter("misses", stats.misses);
        snap.push_counter("coalesced", stats.coalesced);
        snap.push_counter("solves", stats.solves);
        snap.push_counter("warm_solves", stats.warm_solves);
        snap.push_counter("cold_solves", stats.cold_solves);
        snap.push_counter("triaged", stats.triaged);
        snap.push_counter("in_range", stats.in_range);
        snap.push_counter("dual_repairs", stats.dual_repairs);
        snap.push_counter("expired", stats.expired);
        snap.push_counter("revalidations", stats.revalidations);
        snap.push_counter("requeued", stats.requeued);
        snap.push_counter("stale_served", stats.stale_served);
        snap.push_counter("warm_pivots", stats.warm_pivots);
        snap.push_counter("cold_pivots", stats.cold_pivots);
        snap.push_counter("warm_solve_nanos", stats.warm_solve_nanos);
        snap.push_counter("cold_solve_nanos", stats.cold_solve_nanos);
        snap.push_counter("shed", stats.shed);
        snap.push_counter("errors", stats.errors);
        snap.push_counter("prefetched", stats.prefetched);
        snap.push_counter("prefetch_hits", stats.prefetch_hits);
        snap.push_counter("prefetch_wasted", stats.prefetch_wasted);
        snap.push_counter("predicted_exits", stats.predicted_exits);
        snap.push_counter("demand_timeouts", stats.demand_timeouts);
        snap.push_counter("prefetch_cancelled", stats.prefetch_cancelled);
        snap.push_counter("steals", stats.steals);
        snap.push_counter("preferred_evictions", stats.preferred_evictions);
        snap.push_counter("insertions", stats.insertions);
        snap.push_counter("evictions", stats.evictions);
        snap.push_counter("traces_dropped", self.shared.sink.dropped());
        snap.push_counter("solve_records", self.shared.recorder.pushed());
        snap.push_counter("solve_records_dropped", self.shared.recorder.dropped());
        snap.push_gauge("cached_entries", stats.cached_entries as u64);
        snap.push_gauge("prefetch_backlog", self.prefetch_backlog() as u64);
        snap.push_gauge("epoch", self.epoch());
        let lanes = self.running.counters();
        snap.push_gauge("lane_demand_depth", lanes.depth[Lane::Demand.index()]);
        snap.push_gauge("lane_revalidation_depth", lanes.depth[Lane::Revalidation.index()]);
        snap.push_gauge("lane_prefetch_depth", lanes.depth[Lane::Prefetch.index()]);
        snap
    }

    /// Which scheduler is draining the lanes (the `--scheduler` switch).
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Whether per-query lifecycle tracing is on
    /// ([`ServiceConfig::tracing`]).
    pub fn tracing_enabled(&self) -> bool {
        self.shared.sink.enabled()
    }

    /// Drains every worker's trace ring, returning all completed traces
    /// buffered since the last drain, ordered by submission time.
    pub fn drain_traces(&self) -> Vec<QueryTrace> {
        self.shared.sink.drain()
    }

    /// Traces lost to ring contention or overwrite since start.
    pub fn traces_dropped(&self) -> u64 {
        self.shared.sink.dropped()
    }

    /// Whether per-solve solver event recording is on
    /// ([`ServiceConfig::solver_events`]).
    pub fn solver_events_enabled(&self) -> bool {
        self.shared.recorder.enabled()
    }

    /// Drains the solver flight recorder, returning the anomalous solve
    /// records (with their pivot timelines) kept since the last drain.
    pub fn drain_solve_records(&self) -> Vec<SolveRecord> {
        self.shared.recorder.drain()
    }

    /// Anomalous solve records offered to the flight recorder since start.
    pub fn solve_records_pushed(&self) -> u64 {
        self.shared.recorder.pushed()
    }

    /// Anomalous solve records lost to recorder contention or eviction
    /// since start.
    pub fn solve_records_dropped(&self) -> u64 {
        self.shared.recorder.dropped()
    }

    /// The service's time source, for callers (e.g. the load generator)
    /// that want client-side spans on the same clock as the traces.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.shared.clock)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Close the lanes (queued demand still drains; queued speculation
        // is dropped) and join every worker.
        self.running.shutdown();
    }
}

/// Seals `trace` (if tracing is on) with `outcome` at `end` and offers it
/// to `worker`'s ring.
fn finish_trace_at(
    shared: &Shared,
    worker: u32,
    trace: Option<QueryTrace>,
    outcome: &'static str,
    end: u64,
) {
    if let Some(mut t) = trace {
        t.finish(outcome, end);
        shared.sink.push(worker as usize, t);
    }
}

/// Pre-solves one speculative job on an idle worker: validate, drop if the
/// answer is already cached fresh or an identical solve is in flight,
/// otherwise take single-flight leadership and solve through the ordinary
/// triage ladder, installing the answer as a normal cache entry.  Demand
/// queries that coalesced onto the speculative solve are fanned the answer
/// exactly like waiters on a demand solve (and claim the prefetch as
/// landed).
// lint: worker-entry
fn prefetch_one(shared: &Shared, worker: u32, job: PrefetchJob) {
    if job.query.validate().is_err() {
        // A forecaster only predicts platforms for queries it already saw
        // succeed; a malformed speculative query is dropped, not an error.
        return;
    }
    let fingerprint = job.query.fingerprint();
    let key = fingerprint.0;
    let now = shared.now();
    // Speculative leadership: drop the job when the prediction already came
    // true (cached fresh) or a demand solve is already producing the answer.
    if !shared.flight.try_lead(key, || shared.cache.peek_fresh(key, now, shared.ttl).is_some()) {
        return;
    }
    let mut guard = InFlightGuard { shared, key, armed: true };

    // Speculative traces begin at pickup: there is no submitter, so the
    // queue/lookup/flight spans are zero and the record is solve + publish.
    let solve_begin = shared.clock.now_nanos();
    let mut trace = shared.sink.begin(solve_begin);
    if let Some(t) = trace.as_mut() {
        t.worker = worker;
        t.solver = worker;
        t.lane = Lane::Prefetch.name();
    }
    let structural = job.query.structural_fingerprint().0;
    let prior = shared.bases.lock().get(&structural).cloned();
    let (outcome, recording) = solve_recorded(shared, &job.query, fingerprint, prior.as_ref());
    match outcome {
        Ok((answer, report)) => {
            let solve_done = shared.clock.now_nanos();
            if let Some(t) = trace.as_mut() {
                t.solve_done_nanos = solve_done;
                t.triage = report.triage.kind_name();
                t.set_solve(report.trace());
            }
            publish_solver_health(
                shared,
                &job.query,
                key,
                &report,
                recording,
                solve_done.saturating_sub(solve_begin),
                trace.as_mut(),
            );
            bump(&shared.prefetched);
            if let Some(basis) = report.basis {
                publish_basis(shared, structural, basis);
            }
            // Attribution key first, then the cache entry, and only then
            // release single-flight leadership: a demand query racing this
            // completion either parks as a waiter (handled below) or finds
            // the fresh entry — and when it does, the key is already
            // claimable, so the landing is never misread as a plain hit or,
            // worse, as a wasted prefetch by a redundant demand solve.
            shared.ledger.record(key);
            let answer = Arc::new(answer);
            shared.cache.insert_at(key, Arc::clone(&answer), now, Some(structural));
            let waiters = shared.flight.complete(key);
            guard.disarm();
            let end = shared.clock.now_nanos();
            if !waiters.is_empty() {
                // Demand queries coalesced onto the speculative solve: the
                // prefetch has landed (claim the key back unless a hit that
                // raced the removal above already did).
                if shared.ledger.claim(key) {
                    bump(&shared.prefetch_hits);
                }
                for waiter in waiters {
                    let Waiter { platform, reply, submitted_nanos, trace } = waiter;
                    let tailored = tailor(&answer, &platform);
                    shared.stage.e2e_coalesced.record(end.saturating_sub(submitted_nanos));
                    finish_coalesced_trace(shared, worker, trace, "coalesced", end);
                    let _ = reply.send(Ok(Served { answer: tailored, via: ServedVia::Coalesced }));
                }
            }
            finish_trace_at(shared, worker, trace, "prefetch", end);
        }
        Err(e) => {
            // The speculative solve itself failed (e.g. the predicted
            // platform is degenerate): fail any coalesced demand waiters,
            // swallow the speculation.
            let waiters = shared.flight.complete(key);
            guard.disarm();
            let end = shared.clock.now_nanos();
            bump_by(&shared.errors, waiters.len() as u64);
            for waiter in waiters {
                let Waiter { reply, trace, .. } = waiter;
                finish_coalesced_trace(shared, worker, trace, "error", end);
                let _ = reply.send(Err(ServeError::Failed(e.clone())));
            }
            finish_trace_at(shared, worker, trace, "error", end);
        }
    }
}

/// Seals a parked waiter's trace at fan-out: the solving worker stamps
/// itself as the solver and pushes to its own ring.
fn finish_coalesced_trace(
    shared: &Shared,
    worker: u32,
    trace: Option<QueryTrace>,
    outcome: &'static str,
    end: u64,
) {
    if let Some(mut t) = trace {
        t.solver = worker;
        t.finish(outcome, end);
        shared.sink.push(worker as usize, t);
    }
}

/// Runs [`solve_prepared`] with the observer the configuration asks for:
/// a [`steady_lp::RecordingObserver`] capturing the pivot timeline when
/// solver-event recording is on ([`ServiceConfig::solver_events`]), the
/// statically-free [`steady_lp::NoopObserver`] otherwise.  The health
/// aggregate inside the returned report is populated either way.
fn solve_recorded(
    shared: &Shared,
    query: &Query,
    fingerprint: Fingerprint,
    prior: Option<&SolvedBasis>,
) -> (
    Result<(Answer, steady_drift::TriageReport), crate::ServiceError>,
    Option<steady_lp::SolveRecording>,
) {
    if shared.recorder.enabled() {
        let mut rec = steady_lp::RecordingObserver::new(SOLVER_TIMELINE_CAPACITY);
        let outcome = solve_prepared(query, fingerprint, shared.build_schedules, prior, &mut rec);
        (outcome, Some(rec.finish()))
    } else {
        let outcome = solve_prepared(
            query,
            fingerprint,
            shared.build_schedules,
            prior,
            &mut steady_lp::NoopObserver,
        );
        (outcome, None)
    }
}

/// Folds one successful solve into the always-on solver health histograms,
/// stamps the trace's solver fields, and — when the solve was recorded and
/// classified anomalous — keeps its timeline in the flight recorder.
fn publish_solver_health(
    shared: &Shared,
    query: &Query,
    key: u64,
    report: &steady_drift::TriageReport,
    recording: Option<steady_lp::SolveRecording>,
    solve_nanos: u64,
    trace: Option<&mut QueryTrace>,
) {
    shared.stage.record_solver_health(&report.health);
    if let Some(t) = trace {
        t.set_health(&report.health);
        if let Some(rec) = &recording {
            t.set_breakdown(&rec.breakdown());
        }
    }
    if let Some(rec) = recording {
        if let Some(reason) = shared.recorder.classify(solve_nanos, &report.health) {
            shared.recorder.push(SolveRecord {
                fingerprint: key,
                collective: query.collective.kind_name(),
                triage: report.triage.kind_name(),
                reason,
                solve_nanos,
                health: report.health.clone(),
                timeline: rec.events,
                truncated: rec.truncated,
            });
        }
    }
}

/// Publishes a freshly won basis as its structural class's warm-start seed
/// (capped table) **and** marks the class seeded for drift-aware eviction —
/// the two must never drift apart, so every publish site goes through here.
fn publish_basis(shared: &Shared, class: u64, basis: SolvedBasis) {
    let mut bases = shared.bases.lock();
    if bases.len() < MAX_CACHED_BASES || bases.contains_key(&class) {
        bases.insert(class, basis);
        shared.cache.mark_class_seeded(class);
    }
}

/// Removes an in-flight entry when dropped, failing any parked waiters.
///
/// `serve` disarms the guard on the normal path (after fanning the real
/// outcome out); if the solve panics, the guard runs during unwinding so the
/// key does not stay in the table forever — without it, every waiter would
/// block indefinitely and all future queries for the fingerprint would park
/// on a solve that no longer exists.
struct InFlightGuard<'a> {
    shared: &'a Shared,
    key: u64,
    armed: bool,
}

impl InFlightGuard<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let waiters = self.shared.flight.complete(self.key);
        // The solver's own query failed too: one error for it (its reply
        // sender dies with the unwinding stack) plus one per parked waiter.
        bump_by(&self.shared.errors, 1 + waiters.len() as u64);
        for waiter in waiters {
            let _ = waiter.reply.send(Err(ServeError::Failed(ServiceError(
                "the solve for this query panicked".into(),
            ))));
        }
    }
}

// lint: worker-entry
fn serve(shared: &Shared, worker: u32, mut job: Job) {
    bump(&shared.queries);
    let admitted = shared.clock.now_nanos();
    shared.stage.queue_wait.record(admitted.saturating_sub(job.submitted_nanos));
    if let Some(t) = job.trace.as_mut() {
        t.worker = worker;
        t.solver = worker;
        t.admitted_nanos = admitted;
    }
    if let Err(e) = job.query.validate() {
        bump(&shared.errors);
        // Traces are sealed *before* the reply goes out, here and on every
        // path below: once a caller observes its answer, its trace is
        // drainable — no race between a reply and its own record.
        finish_trace_at(shared, worker, job.trace, "error", shared.clock.now_nanos());
        let _ = job.reply.send(Err(ServeError::Failed(e)));
        return;
    }
    let fingerprint = job.query.fingerprint();
    let key = fingerprint.0;
    let now = shared.now();

    let lookup = shared.cache.lookup(key, now, shared.ttl);
    let lookup_done = shared.clock.now_nanos();
    shared.stage.lookup.record(lookup_done.saturating_sub(admitted));
    if let Some(t) = job.trace.as_mut() {
        t.lookup_done_nanos = lookup_done;
        t.lookup = match &lookup {
            Lookup::Hit(_) => "hit",
            Lookup::Stale(_) => "stale",
            Lookup::Miss => "miss",
        };
    }
    let stale = match lookup {
        Lookup::Hit(answer) => {
            if shared.ledger.claim(key) {
                bump(&shared.prefetch_hits);
            }
            let answer = tailor(&answer, &job.query.platform);
            let end = shared.clock.now_nanos();
            shared.stage.publish.record(end.saturating_sub(lookup_done));
            shared.stage.e2e_hit.record(end.saturating_sub(job.submitted_nanos));
            finish_trace_at(shared, worker, job.trace, "cache", end);
            let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
            return;
        }
        // Expired: keep the old answer as the shed fallback and revalidate.
        Lookup::Stale(answer) => Some(answer),
        Lookup::Miss => None,
    };

    // Single-flight admission: park on an identical in-flight solve, or
    // become the leader (solver) for this key.  The re-check runs under the
    // admission lock — the solve may have completed between the lookup
    // above and the lock; a still-stale entry reads as absent there
    // (peek_fresh), because it must be revalidated.
    let mut job = match shared.flight.join_or_lead(
        key,
        job,
        || shared.cache.peek_fresh(key, now, shared.ttl),
        |job| {
            let mut trace = job.trace;
            if let Some(t) = trace.as_mut() {
                t.flight_done_nanos = shared.clock.now_nanos();
            }
            Waiter {
                platform: job.query.platform,
                reply: job.reply,
                submitted_nanos: job.submitted_nanos,
                trace,
            }
        },
    ) {
        Flight::Ready(answer, job) => {
            if shared.ledger.claim(key) {
                bump(&shared.prefetch_hits);
            }
            let answer = tailor(&answer, &job.query.platform);
            let end = shared.clock.now_nanos();
            shared.stage.publish.record(end.saturating_sub(lookup_done));
            shared.stage.e2e_hit.record(end.saturating_sub(job.submitted_nanos));
            finish_trace_at(shared, worker, job.trace, "cache", end);
            let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
            return;
        }
        Flight::Parked => {
            bump(&shared.coalesced);
            return;
        }
        Flight::Leader(job) => job,
    };

    let flight_done = shared.clock.now_nanos();
    if let Some(t) = job.trace.as_mut() {
        t.flight_done_nanos = flight_done;
    }

    // Admission control: this query needs a solve.  Take a slot, park the
    // job in the gate's pending queue (the worker is immediately free for
    // hit traffic — requeue-based admission), or shed.
    match shared.gate.admit(SolveJob { job, fingerprint, stale, gate_enter_nanos: flight_done }) {
        Admission::Admitted(solve) => run_solve_chain(shared, worker, solve),
        Admission::Queued => {
            bump(&shared.requeued);
        }
        Admission::Shed(solve) => shed(shared, worker, solve),
    }
}

/// Sheds a solve the gate rejected, releasing every waiter that coalesced
/// onto it — no solve for this key is going to happen.  A *revalidation*
/// degrades gracefully: its expired answer is served as-is
/// ([`ServedVia::StaleFallback`]) instead of failing the callers.
fn shed(shared: &Shared, worker: u32, solve: SolveJob) {
    let SolveJob { job, fingerprint, stale, .. } = solve;
    let key = fingerprint.0;
    let waiters = shared.flight.complete(key);
    let end = shared.clock.now_nanos();
    match &stale {
        Some(answer) => {
            bump_by(&shared.stale_served, 1 + waiters.len() as u64);
            let serve_stale = |platform: &Platform| {
                Ok(Served { answer: tailor(answer, platform), via: ServedVia::StaleFallback })
            };
            finish_trace_at(shared, worker, job.trace, "stale-fallback", end);
            let _ = job.reply.send(serve_stale(&job.query.platform));
            for waiter in waiters {
                let Waiter { platform, reply, trace, .. } = waiter;
                finish_coalesced_trace(shared, worker, trace, "stale-fallback", end);
                let _ = reply.send(serve_stale(&platform));
            }
        }
        None => {
            bump_by(&shared.shed, 1 + waiters.len() as u64);
            finish_trace_at(shared, worker, job.trace, "shed", end);
            let _ = job.reply.send(Err(ServeError::Shed));
            for waiter in waiters {
                let Waiter { reply, trace, .. } = waiter;
                finish_coalesced_trace(shared, worker, trace, "shed", end);
                let _ = reply.send(Err(ServeError::Shed));
            }
        }
    }
}

/// Runs `first` while holding a gate slot, then keeps draining the gate's
/// pending queue until it is empty — the slot transfers from job to job
/// without ever being released in between, so queued jobs cannot be
/// stranded.  Each job is individually contained: a panicking solve fails
/// its own callers (via the in-flight guard) but the chain, and with it the
/// slot, carries on.
fn run_solve_chain(shared: &Shared, worker: u32, first: SolveJob) {
    let mut next = Some(first);
    // The first job was admitted inline; everything taken over afterwards
    // sat in the gate's pending queue, which its trace records.
    let mut queued = false;
    while let Some(mut solve) = next.take() {
        if queued {
            if let Some(t) = solve.job.trace.as_mut() {
                t.gate_queued = true;
            }
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            solve_one(shared, worker, solve)
        }));
        queued = true;
        next = shared.gate.release_or_takeover();
    }
}

/// Solves one admitted job through the drift-triage ladder, publishes the
/// answer and its basis, and fans the result out to every parked waiter.
// lint: worker-entry
fn solve_one(shared: &Shared, worker: u32, solve: SolveJob) {
    let SolveJob { mut job, fingerprint, stale, gate_enter_nanos } = solve;
    let key = fingerprint.0;
    let mut guard = InFlightGuard { shared, key, armed: true };

    bump(&shared.solves);
    // A demand solve for a key the prefetcher once installed means the
    // speculative entry was evicted or expired before any demand query
    // landed on it: the prediction was right but wasted.
    if shared.ledger.claim(key) {
        bump(&shared.prefetch_wasted);
    }
    // Triage seed: the winning basis of this query's structural class (same
    // topology and roles, possibly different costs), if any.
    let structural_key = job.query.structural_fingerprint().0;
    let prior = shared.bases.lock().get(&structural_key).cloned();
    // One clock read bounds both the gate wait (ending here, inclusive of
    // the ledger/basis bookkeeping above) and the solve span (starting
    // here), so the two stages stay adjacent.
    let solve_begin = shared.clock.now_nanos();
    shared.stage.gate_wait.record(solve_begin.saturating_sub(gate_enter_nanos));
    if let Some(t) = job.trace.as_mut() {
        t.solver = worker;
        t.solve_start_nanos = solve_begin;
    }
    // The query was already validated and fingerprinted by `serve`;
    // solve_prepared skips redoing both on the hot path.
    let mut solve_done = solve_begin;
    let mut solved_warm = None;
    let (solve_outcome, recording) =
        solve_recorded(shared, &job.query, fingerprint, prior.as_ref());
    let outcome = match solve_outcome {
        Ok((answer, report)) => {
            solve_done = shared.clock.now_nanos();
            let nanos = solve_done.saturating_sub(solve_begin);
            if let Some(t) = job.trace.as_mut() {
                t.solve_done_nanos = solve_done;
                t.triage = report.triage.kind_name();
                t.set_solve(report.trace());
            }
            publish_solver_health(
                shared,
                &job.query,
                key,
                &report,
                recording,
                nanos,
                job.trace.as_mut(),
            );
            if report.had_prior {
                bump(&shared.triaged);
            }
            match report.triage {
                Triage::InRange => {
                    bump(&shared.in_range);
                }
                Triage::DualRepair { .. } => {
                    bump(&shared.dual_repairs);
                }
                Triage::ResolveWarm { .. } | Triage::ResolveCold => {}
            }
            let warm =
                report.triage.reused_basis() || matches!(report.triage, Triage::ResolveWarm { .. });
            solved_warm = Some(warm);
            if warm {
                bump(&shared.warm_solves);
                bump_by(&shared.warm_pivots, report.iterations as u64);
                bump_by(&shared.warm_solve_nanos, nanos);
                shared.stage.solve_warm.record(nanos);
            } else {
                bump(&shared.cold_solves);
                bump_by(&shared.cold_pivots, report.iterations as u64);
                bump_by(&shared.cold_solve_nanos, nanos);
                shared.stage.solve_cold.record(nanos);
            }
            if stale.is_some() {
                bump(&shared.revalidations);
            }
            if let Some(basis) = report.basis {
                publish_basis(shared, structural_key, basis);
            }
            let answer = Arc::new(answer);
            shared.cache.insert_at(key, Arc::clone(&answer), shared.now(), Some(structural_key));
            Ok(answer)
        }
        Err(e) => Err(e),
    };

    let waiters = shared.flight.complete(key);
    guard.disarm();
    if outcome.is_err() {
        // One error response per caller: the solver's own plus every waiter.
        bump_by(&shared.errors, 1 + waiters.len() as u64);
    }
    let end = shared.clock.now_nanos();
    shared.stage.publish.record(end.saturating_sub(solve_done));
    match solved_warm {
        Some(true) => shared.stage.e2e_warm.record(end.saturating_sub(job.submitted_nanos)),
        Some(false) => shared.stage.e2e_cold.record(end.saturating_sub(job.submitted_nanos)),
        None => {}
    }
    // The solver's own job gets the full answer (it is the numbering the
    // schedule was built in); waiters get it tailored to their platforms.
    let respond = |platform: Option<&Platform>, via: ServedVia| match &outcome {
        Ok(answer) => Ok(Served {
            answer: platform.map_or_else(|| Arc::clone(answer), |p| tailor(answer, p)),
            via,
        }),
        Err(e) => Err(ServeError::Failed(e.clone())),
    };
    let leader_via = if stale.is_some() { ServedVia::Revalidated } else { ServedVia::Solve };
    let leader_outcome = match (&outcome, solved_warm) {
        (Err(_), _) => "error",
        (Ok(_), _) if stale.is_some() => "revalidated",
        (Ok(_), Some(true)) => "solve-warm",
        _ => "solve-cold",
    };
    finish_trace_at(shared, worker, job.trace.take(), leader_outcome, end);
    let _ = job.reply.send(respond(None, leader_via));
    for waiter in waiters {
        let Waiter { platform, reply, submitted_nanos, trace } = waiter;
        shared.stage.e2e_coalesced.record(end.saturating_sub(submitted_nanos));
        let waiter_outcome = if outcome.is_ok() { "coalesced" } else { "error" };
        finish_coalesced_trace(shared, worker, trace, waiter_outcome, end);
        let _ = reply.send(respond(Some(&platform), ServedVia::Coalesced));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Collective;
    use std::time::Instant;
    use steady_platform::generators::figure2;
    use steady_platform::NodeId;
    use steady_rational::rat;

    fn figure2_query() -> Query {
        let instance = figure2();
        Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        }
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let first = service.query(figure2_query()).unwrap();
        assert_eq!(first.via, ServedVia::Solve);
        assert_eq!(first.answer.throughput, rat(1, 2));
        let second = service.query(figure2_query()).unwrap();
        assert_eq!(second.via, ServedVia::Cache);
        assert_eq!(second.answer.throughput, rat(1, 2));
        let stats = service.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cached_entries, 1);
    }

    #[test]
    fn schedules_are_built_when_configured() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let served = service.query(figure2_query()).unwrap();
        let schedule = served.answer.schedule.as_ref().expect("schedule built");
        assert_eq!(schedule.throughput(), rat(1, 2));
    }

    #[test]
    fn relabeled_cache_hits_drop_the_schedule_but_keep_the_throughput() {
        use crate::fingerprint::permuted_platform;

        let service = Service::start(ServiceConfig {
            workers: 2,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let cold = service.query(figure2_query()).unwrap();
        assert!(cold.answer.schedule.is_some(), "solver's own numbering keeps the schedule");

        // The same query with every node renumbered: same fingerprint, same
        // throughput, but the cached schedule's node ids would be wrong.
        let instance = figure2();
        let perm = [4, 0, 1, 2, 3];
        let relabeled = Query {
            platform: permuted_platform(&instance.platform, &perm),
            collective: Collective::Scatter {
                source: NodeId(perm[instance.source.index()]),
                targets: instance.targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
            },
        };
        let served = service.query(relabeled).unwrap();
        assert_eq!(served.via, ServedVia::Cache);
        assert_eq!(served.answer.throughput, cold.answer.throughput);
        assert!(served.answer.schedule.is_none(), "foreign numbering must not get a schedule");

        // An exact repeat still gets the schedule.
        let repeat = service.query(figure2_query()).unwrap();
        assert_eq!(repeat.via, ServedVia::Cache);
        assert!(repeat.answer.schedule.is_some());
    }

    #[test]
    fn invalid_queries_get_error_responses() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let mut query = figure2_query();
        query.collective = Collective::Scatter { source: NodeId(42), targets: vec![NodeId(1)] };
        assert!(service.query(query).is_err());
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn cost_drift_queries_warm_start_from_the_structural_class() {
        use steady_platform::generators::heterogeneous_star;

        let star_scatter = |costs: &[steady_rational::Ratio]| {
            let (platform, center, leaves) = heterogeneous_star(costs);
            Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
        };
        let base = star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
        let drifted = star_scatter(&[rat(1, 3), rat(1, 5), rat(2, 3)]);
        assert_ne!(base.fingerprint(), drifted.fingerprint());
        assert_eq!(base.structural_fingerprint(), drifted.structural_fingerprint());

        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let cold = service.query(base).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);
        let warm = service.query(drifted.clone()).unwrap();
        assert_eq!(warm.via, ServedVia::Solve, "a drifted platform is still a cache miss");
        let stats = service.stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.warm_solves, 1, "the second solve reuses the class basis: {stats:?}");
        // Warm-started answers are bit-identical to from-scratch answers.
        let from_scratch = crate::query::solve_query(&drifted, false).unwrap();
        assert_eq!(warm.answer.throughput, from_scratch.throughput);
    }

    #[test]
    fn admission_gate_queues_or_sheds_cold_queries() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use steady_platform::generators::{random_connected, RandomConfig};

        let expensive = |seed: u64| {
            let config = RandomConfig { nodes: 8, ..RandomConfig::default() };
            let platform = random_connected(&config, &mut StdRng::seed_from_u64(seed));
            let participants: Vec<NodeId> = platform.node_ids().collect();
            Query {
                platform,
                collective: Collective::Reduce {
                    participants,
                    target: NodeId(0),
                    size: rat(1, 1),
                    task_cost: rat(1, 1),
                },
            }
        };

        // Queue mode: one solve slot, a queue deep enough for everyone — all
        // four distinct cold queries must eventually be served, one at a time.
        let service = Service::start(ServiceConfig {
            workers: 4,
            max_inflight_cold: 1,
            cold_queue: 16,
            ..ServiceConfig::default()
        });
        let responses: Vec<_> = (0..4).map(|i| service.submit(expensive(i))).collect();
        for response in responses {
            assert!(response.recv().unwrap().is_ok(), "queued cold queries are served");
        }
        let stats = service.stats();
        assert_eq!(stats.solves, 4);
        assert_eq!(stats.shed, 0);

        // Shed mode: one slot, no queue — concurrent cold queries beyond the
        // slot are shed with the distinct variant, not errors.
        let service = Service::start(ServiceConfig {
            workers: 4,
            max_inflight_cold: 1,
            cold_queue: 0,
            ..ServiceConfig::default()
        });
        let responses: Vec<_> = (10..14).map(|i| service.submit(expensive(i))).collect();
        let mut served = 0u64;
        let mut shed = 0u64;
        for response in responses {
            match response.recv().unwrap() {
                Ok(_) => served += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(ServeError::Failed(e)) => panic!("unexpected failure: {e}"),
            }
        }
        assert_eq!(served + shed, 4);
        assert!(served >= 1, "the slot holder is always served");
        let stats = service.stats();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.errors, 0, "shed responses are not errors");
    }

    #[test]
    fn expired_entries_revalidate_through_triage_not_eviction() {
        let service =
            Service::start(ServiceConfig { workers: 1, ttl: Some(0), ..ServiceConfig::default() });
        let cold = service.query(figure2_query()).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);

        // Same epoch: still fresh.
        let hit = service.query(figure2_query()).unwrap();
        assert_eq!(hit.via, ServedVia::Cache);

        // Epoch advances: the entry expires and the next query revalidates
        // it — identical LP, cached class basis, so the triage is in-range
        // with zero pivots — and the answer stays exact.
        assert_eq!(service.advance_epoch(), 1);
        assert_eq!(service.epoch(), 1);
        let revalidated = service.query(figure2_query()).unwrap();
        assert_eq!(revalidated.via, ServedVia::Revalidated);
        assert_eq!(revalidated.answer.throughput, cold.answer.throughput);

        // Revalidation re-stamped the entry: fresh again within this epoch.
        let hit = service.query(figure2_query()).unwrap();
        assert_eq!(hit.via, ServedVia::Cache);

        let stats = service.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.revalidations, 1);
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.triaged, 1, "the revalidation had a prior basis");
        assert_eq!(stats.in_range, 1, "an unchanged LP must re-price in range");
        assert!((stats.triage_reuse_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.cached_entries, 1, "expiry never drops the entry");
    }

    #[test]
    fn drifted_queries_triage_against_the_class_basis() {
        use steady_platform::generators::heterogeneous_star;

        let star_scatter = |costs: &[steady_rational::Ratio]| {
            let (platform, center, leaves) = heterogeneous_star(costs);
            Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
        };
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let base = service.query(star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4)])).unwrap();
        // A small drift of one cost: same structural class, new cache key.
        let drifted = star_scatter(&[rat(17, 32), rat(1, 3), rat(1, 4)]);
        let from_scratch = crate::query::solve_query(&drifted, false).unwrap();
        let served = service.query(drifted).unwrap();
        assert_eq!(served.via, ServedVia::Solve);
        assert_eq!(served.answer.throughput, from_scratch.throughput);
        assert!(base.answer.throughput.is_positive());
        let stats = service.stats();
        assert_eq!(stats.triaged, 1);
        assert_eq!(stats.warm_solves, 1, "the drifted solve reused the class basis: {stats:?}");
    }

    #[test]
    fn shed_revalidations_fall_back_to_the_stale_answer() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use steady_platform::generators::{random_connected, RandomConfig};

        // One solve slot, no queue: with the slot pinned by a slow cold
        // solve, an expired entry's revalidation is shed — and must degrade
        // to serving the stale answer rather than an error.
        let service = Service::start(ServiceConfig {
            workers: 2,
            ttl: Some(0),
            max_inflight_cold: 1,
            cold_queue: 0,
            ..ServiceConfig::default()
        });
        let quick = figure2_query();
        let fresh = service.query(quick.clone()).unwrap();
        assert_eq!(fresh.via, ServedVia::Solve);
        // A worker replies before releasing its gate slot; give that release
        // time to land so the slow solve below deterministically gets the
        // slot rather than being shed by the transient occupancy.
        std::thread::sleep(std::time::Duration::from_millis(100));
        service.advance_epoch(); // the quick answer is now expired

        let slow = {
            let config = RandomConfig { nodes: 8, ..RandomConfig::default() };
            let platform = random_connected(&config, &mut StdRng::seed_from_u64(2));
            let participants: Vec<NodeId> = platform.node_ids().collect();
            Query {
                platform,
                collective: Collective::Reduce {
                    participants,
                    target: NodeId(0),
                    size: rat(1, 1),
                    task_cost: rat(1, 1),
                },
            }
        };
        let slow_response = service.submit(slow);
        // Wait until the slow solve has actually claimed the slot (its
        // `solves` increment happens at solve start) rather than sleeping
        // blind; the reduce LP then runs for orders of magnitude longer
        // than the stale query below takes to arrive.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while service.stats().solves < 2 {
            assert!(Instant::now() < deadline, "slow solve never started");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }

        let stale = service.query(quick).unwrap();
        assert_eq!(stale.via, ServedVia::StaleFallback, "shed revalidation serves stale");
        assert_eq!(stale.answer.throughput, fresh.answer.throughput);
        assert!(slow_response.recv().unwrap().is_ok());
        let stats = service.stats();
        assert_eq!(stats.stale_served, 1);
        assert_eq!(stats.shed, 0, "a stale fallback is not a shed error");
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn requeued_cold_queries_do_not_park_workers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use steady_platform::generators::{random_connected, RandomConfig};

        // One solve slot, a deep queue, and only TWO workers: four distinct
        // cold queries are submitted at once.  Under the old blocking
        // admission, workers would park on the gate and the test could only
        // pass with workers >= queries; with requeue-based admission the
        // jobs queue *by value* and the slot-holder drains them, while a
        // cache hit sails through a free worker mid-stampede.
        let service = Service::start(ServiceConfig {
            workers: 2,
            max_inflight_cold: 1,
            cold_queue: 16,
            ..ServiceConfig::default()
        });
        let warm = figure2_query();
        let first = service.query(warm.clone()).unwrap();
        assert_eq!(first.via, ServedVia::Solve);

        let expensive = |seed: u64| {
            let config = RandomConfig { nodes: 6, ..RandomConfig::default() };
            let platform = random_connected(&config, &mut StdRng::seed_from_u64(seed));
            let participants: Vec<NodeId> = platform.node_ids().collect();
            Query {
                platform,
                collective: Collective::Reduce {
                    participants,
                    target: NodeId(0),
                    size: rat(1, 1),
                    task_cost: rat(1, 1),
                },
            }
        };
        let responses: Vec<_> = (20..24).map(|i| service.submit(expensive(i))).collect();
        // While the stampede is queued behind one slot, hit traffic is
        // served promptly by the worker the queue does NOT occupy.
        let hit = service.query(warm).unwrap();
        assert_eq!(hit.via, ServedVia::Cache);
        for response in responses {
            assert!(response.recv().unwrap().is_ok(), "queued cold queries are served");
        }
        let stats = service.stats();
        assert_eq!(stats.solves, 5);
        assert_eq!(stats.shed, 0);
        assert!(stats.requeued >= 1, "the stampede must have requeued: {stats:?}");
    }

    #[test]
    fn snapshot_round_trip_restores_the_warm_set() {
        let dir = std::env::temp_dir().join("steady-service-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique per process so concurrent test runs don't race on the file.
        let path = dir.join(format!("warmset_{}.json", std::process::id()));

        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let cold = service.query(figure2_query()).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);
        assert_eq!(service.snapshot(&path).unwrap(), 1);
        drop(service);

        let restored =
            Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() }.preload(&path));
        let served = restored.query(figure2_query()).unwrap();
        assert_eq!(served.via, ServedVia::Cache, "restored entries serve without a solve");
        assert_eq!(served.answer.throughput, cold.answer.throughput);
        assert_eq!(restored.stats().solves, 0);

        // The snapshot also carried the structural class's basis seed: the
        // restarted service's very FIRST drifted solve (same topology and
        // roles as Figure 2, scaled costs — a cache miss) triages against
        // it instead of going cold.
        let instance = figure2();
        let mut drifted_platform = steady_platform::Platform::new();
        for id in instance.platform.node_ids() {
            let node = instance.platform.node(id);
            drifted_platform.add_node(node.name.clone(), node.speed.clone());
        }
        for id in instance.platform.edge_ids() {
            let e = instance.platform.edge(id);
            drifted_platform.add_edge(e.from, e.to, &e.cost * &rat(9, 8));
        }
        let drifted = Query {
            platform: drifted_platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        };
        let served = restored.query(drifted).unwrap();
        assert_eq!(served.via, ServedVia::Solve);
        let stats = restored.stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.triaged, 1, "the restored basis seed fed the first drifted solve");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_joins_workers() {
        let service = Service::start(ServiceConfig { workers: 3, ..ServiceConfig::default() });
        let _ = service.query(figure2_query()).unwrap();
        drop(service); // must not hang
    }

    #[test]
    fn prefetched_answers_land_as_cache_hits_and_stay_exact() {
        use steady_platform::generators::heterogeneous_star;

        let star_scatter = |costs: &[steady_rational::Ratio]| {
            let (platform, center, leaves) = heterogeneous_star(costs);
            Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
        };
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        // Demand-solve the base platform so its class has a basis seed.
        let base = star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
        let class = base.structural_fingerprint().0;
        let cold = service.query(base).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);
        assert!(service.class_basis(class).is_some(), "the demand solve published its basis");

        // Speculatively pre-solve a predicted drifted platform.
        let predicted = star_scatter(&[rat(17, 32), rat(1, 3), rat(1, 4)]);
        let expected = crate::query::solve_query(&predicted, false).unwrap();
        let queued = service
            .schedule_prefetch([PrefetchJob { query: predicted.clone(), predicted_exit: true }]);
        assert_eq!(queued, 1);
        assert!(service.await_prefetch_idle(Duration::from_secs(20)), "prefetch never drained");

        // The prediction comes true: the demand query is a pure cache hit,
        // attributed to the prefetch, and exactly equal to a cold solve.
        let served = service.query(predicted).unwrap();
        assert_eq!(served.via, ServedVia::Cache);
        assert_eq!(served.answer.throughput, expected.throughput);
        let stats = service.stats();
        assert_eq!(stats.prefetched, 1);
        assert_eq!(stats.prefetch_hits, 1);
        assert_eq!(stats.predicted_exits, 1);
        assert_eq!(stats.prefetch_wasted, 0);
        assert_eq!(stats.solves, 1, "only the base platform needed a demand solve");
        assert!((stats.prefetch_hit_fraction() - 0.5).abs() < 1e-12);

        // A second landing on the same entry is an ordinary hit.
        let _ = service.query(star_scatter(&[rat(17, 32), rat(1, 3), rat(1, 4)])).unwrap();
        assert_eq!(service.stats().prefetch_hits, 1, "a prefetch lands at most once");
    }

    #[test]
    fn duplicate_and_cached_prefetches_are_dropped() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let query = figure2_query();
        let _ = service.query(query.clone()).unwrap();

        // Already cached fresh: the speculative job is dropped on pickup.
        service.schedule_prefetch([
            PrefetchJob { query: query.clone(), predicted_exit: false },
            PrefetchJob { query, predicted_exit: false },
        ]);
        assert!(service.await_prefetch_idle(Duration::from_secs(20)));
        let stats = service.stats();
        assert_eq!(stats.prefetched, 0, "nothing was speculatively solved");
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.prefetch_hits, 0);
    }

    #[test]
    fn prefetch_runs_even_without_demand_traffic() {
        // An idle pool must drain the queue on its own — no demand query is
        // ever submitted.
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let queued = service
            .schedule_prefetch([PrefetchJob { query: figure2_query(), predicted_exit: false }]);
        assert_eq!(queued, 1);
        assert!(service.await_prefetch_idle(Duration::from_secs(20)));
        let stats = service.stats();
        assert_eq!(stats.prefetched, 1);
        assert_eq!(stats.cached_entries, 1);
        assert_eq!(stats.solves, 0);
        assert_eq!(stats.queries, 0);
    }

    #[test]
    fn tracing_off_records_no_traces_but_metrics_stay_on() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        assert!(!service.tracing_enabled());
        let _ = service.query(figure2_query()).unwrap();
        let _ = service.query(figure2_query()).unwrap();
        assert!(service.drain_traces().is_empty());
        assert_eq!(service.traces_dropped(), 0);
        // Metrics are on regardless of tracing.
        let metrics = service.metrics();
        assert_eq!(metrics.counter("queries"), Some(2));
        assert_eq!(metrics.histogram("stage_queue_wait_nanos").unwrap().count(), 2);
        assert_eq!(metrics.histogram("e2e_hit_nanos").unwrap().count(), 1);
        let solved = metrics.histogram("stage_solve_cold_nanos").unwrap().count()
            + metrics.histogram("stage_solve_warm_nanos").unwrap().count();
        assert_eq!(solved, 1);
    }

    /// The acceptance criterion: a traced query's stage spans are adjacent
    /// and sum exactly to its end-to-end latency, for hits and solves alike.
    #[test]
    fn traced_queries_produce_span_complete_traces() {
        let service =
            Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() }.traced());
        assert!(service.tracing_enabled());
        let _ = service.query(figure2_query()).unwrap();
        let _ = service.query(figure2_query()).unwrap();
        let traces = service.drain_traces();
        assert_eq!(traces.len(), 2, "one trace per query");
        assert_eq!(service.traces_dropped(), 0);

        let solve = traces.iter().find(|t| t.outcome.starts_with("solve")).expect("a solve trace");
        assert_eq!(solve.lookup, "miss");
        assert!(solve.solve_done_nanos > solve.solve_start_nanos, "the LP solve takes time");
        let hit = traces.iter().find(|t| t.outcome == "cache").expect("a cache trace");
        assert_eq!(hit.lookup, "hit");

        for t in &traces {
            let sum: u64 = t.stages().iter().map(|&(_, s, e)| e - s).sum();
            assert_eq!(sum, t.total_nanos(), "stage spans must sum to e2e: {t:?}");
            for window in t.stages().windows(2) {
                assert_eq!(window[0].2, window[1].1, "stages must be adjacent: {t:?}");
            }
        }

        // The drained traces render as loadable Chrome trace JSON.
        let json = crate::obs::chrome_trace_json(&traces, &[]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"solve\""));

        // A second drain returns nothing new.
        assert!(service.drain_traces().is_empty());
    }

    #[test]
    fn manual_clock_drives_deterministic_timestamps() {
        use crate::obs::{Clock, ManualClock};

        let clock = Arc::new(ManualClock::new());
        clock.advance(1_000);
        let service = Service::start_with_clock(
            ServiceConfig { workers: 1, ..ServiceConfig::default() }.traced(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let _ = service.query(figure2_query()).unwrap();
        let traces = service.drain_traces();
        assert_eq!(traces.len(), 1);
        // A frozen clock means every span is zero-length and every stamp is
        // exactly the clock's value — fully deterministic observability.
        assert_eq!(traces[0].submitted_nanos, 1_000);
        assert_eq!(traces[0].end_nanos, 1_000);
        assert_eq!(traces[0].total_nanos(), 0);
        assert_eq!(service.metrics().histogram("e2e_solve_cold_nanos").unwrap().max(), 0);
    }

    #[test]
    fn metrics_render_json_and_prometheus() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let _ = service.query(figure2_query()).unwrap();
        let metrics = service.metrics();
        let json = metrics.to_json();
        assert!(json.contains("\"schema_version\": 2"), "{json}");
        assert!(json.contains("\"queries\": 1"), "{json}");
        assert!(json.contains("\"stage_queue_wait_nanos\""), "{json}");
        let prom = metrics.to_prometheus();
        assert!(prom.contains("steady_queries_total 1"), "{prom}");
        assert!(prom.contains("# TYPE steady_stage_queue_wait_nanos histogram"), "{prom}");
        assert!(prom.contains("steady_cached_entries 1"), "{prom}");
    }

    /// The solver health histograms are always on (no `solver_events`
    /// needed) and reach both expositions: one solve means one sample in
    /// each, and a cold figure-2 scatter spends at least one pivot.
    #[test]
    fn solver_histograms_reach_the_expositions() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let _ = service.query(figure2_query()).unwrap();
        let metrics = service.metrics();
        for name in [
            "solver_pivots",
            "solver_degenerate_pivots",
            "solver_bland_pivots",
            "solver_peak_eta",
            "solver_refactorizations",
        ] {
            let h = metrics.histogram(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.count(), 1, "{name} must sample once per solve");
        }
        assert!(metrics.histogram("solver_pivots").unwrap().sum() > 0);
        // The dense route (figure 2 is small) never refactorizes.
        assert_eq!(metrics.histogram("solver_refactorizations").unwrap().sum(), 0);
        let json = metrics.to_json();
        assert!(json.contains("\"solver_pivots\""), "{json}");
        let prom = metrics.to_prometheus();
        assert!(prom.contains("# TYPE steady_solver_pivots histogram"), "{prom}");
        assert!(prom.contains("steady_solver_pivots_count 1"), "{prom}");
        assert!(prom.contains("steady_solver_bland_pivots_count 1"), "{prom}");
    }

    /// With `solver_events` on: recording never changes answers, healthy
    /// traffic leaves the flight recorder conservation-clean, and traced
    /// queries carry a solver time breakdown that nests inside the measured
    /// solve span.
    #[test]
    fn solver_events_do_not_change_answers_and_recorder_conserves() {
        let baseline = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let plain = baseline.query(figure2_query()).unwrap();

        let service = Service::start(
            ServiceConfig { workers: 1, ..ServiceConfig::default() }.with_solver_events().traced(),
        );
        assert!(service.solver_events_enabled());
        let recorded = service.query(figure2_query()).unwrap();
        assert_eq!(recorded.answer.throughput, plain.answer.throughput);

        // Healthy, fast solves produce no anomalies; conservation holds.
        let records = service.drain_solve_records();
        assert_eq!(
            service.solve_records_pushed(),
            records.len() as u64 + service.solve_records_dropped()
        );
        // The traced query carried the solver breakdown: phase spans sum to
        // no more than the measured solve span.
        let traces = service.drain_traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        let phase_total = t.solve_phase1_nanos + t.solve_dual_nanos + t.solve_phase2_nanos;
        assert!(t.solve_phase2_nanos > 0, "a cold solve records a phase-2 span");
        assert!(
            phase_total <= t.solve_done_nanos - t.solve_start_nanos,
            "solver breakdown must nest inside the solve span"
        );
    }

    #[test]
    fn coalesced_waiters_get_traces_too() {
        // One worker, slow solve path: park several identical queries so at
        // least some coalesce onto the leader's in-flight solve.
        let service =
            Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() }.traced());
        let replies: Vec<_> = (0..4).map(|_| service.submit(figure2_query())).collect();
        for reply in replies {
            let served = reply.recv().expect("reply");
            assert!(served.is_ok());
        }
        let traces = service.drain_traces();
        assert_eq!(traces.len(), 4, "every query traced, parked or not");
        let coalesced = traces.iter().filter(|t| t.outcome == "coalesced").count();
        assert_eq!(coalesced as u64, service.stats().coalesced);
        let e2e = service.metrics().histogram("e2e_coalesced_nanos").unwrap().count();
        assert_eq!(e2e, service.stats().coalesced);
    }
}
