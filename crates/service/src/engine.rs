//! The serving engine: a worker pool with single-flight deduplication,
//! warm-started cold solves and admission control.
//!
//! Queries are submitted to an unbounded crossbeam channel and picked up by a
//! fixed pool of worker threads (the threaded-executor shape: workers share
//! one receiver and a common stop condition — here, channel disconnection).
//! Each worker:
//!
//! 1. fingerprints the query and consults the [`SolutionCache`];
//! 2. on a miss, checks the **in-flight table**: if an identical (isomorphic)
//!    query is already being solved, the reply channel is parked on that
//!    solve instead of stampeding the LP — *single-flight* deduplication;
//! 3. passes the **admission gate**: at most
//!    [`ServiceConfig::max_inflight_cold`] cold solves run concurrently, a
//!    bounded number more wait their turn (each waiter still occupies its
//!    worker thread — see [`ServiceConfig::cold_queue`] for how to size the
//!    bound so cache hits keep dedicated workers), and the excess is *shed*
//!    with [`ServeError::Shed`];
//! 4. solves — **warm-started** from the cached [`SolvedBasis`] of the
//!    query's structural class (same topology and roles, any edge costs)
//!    when one exists — publishes the answer and its final basis, and fans
//!    the result out to every parked waiter.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use steady_core::problem::SolvedBasis;
use steady_platform::Platform;

use crate::cache::{CacheConfig, CacheStats, SolutionCache};
use crate::fingerprint::Fingerprint;
use crate::persist;
use crate::query::{solve_prepared, Answer, Query};
use crate::ServiceError;

/// Upper bound on remembered warm-start bases (one per structural class);
/// beyond it, new classes are simply not remembered.  A basis is a few
/// hundred `usize`s, so this caps the table at a few MB even under
/// adversarial traffic that never repeats a structure.
const MAX_CACHED_BASES: usize = 4096;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (0 means one per available CPU).
    pub workers: usize,
    /// Solution-cache sizing.
    pub cache: CacheConfig,
    /// Whether answers include an explicit periodic schedule (slower solves,
    /// richer answers).
    pub build_schedules: bool,
    /// Maximum number of cold LP solves running concurrently (0 = unlimited).
    /// Excess cold queries wait in a bounded queue or are shed.
    pub max_inflight_cold: usize,
    /// How many cold queries may wait for a solve slot when the gate is full
    /// (only meaningful with `max_inflight_cold > 0`); arrivals beyond this
    /// are shed with [`ServeError::Shed`].
    ///
    /// Each *waiting* cold query occupies a worker thread, so at most
    /// `workers - max_inflight_cold` can ever wait at once regardless of
    /// this bound, and every waiter reduces the capacity left for cached
    /// traffic.  To actually protect cache-hit latency under a cold
    /// stampede, keep `max_inflight_cold + cold_queue` *below* `workers`
    /// (e.g. `workers: 8, max_inflight_cold: 2, cold_queue: 2` sheds the
    /// rest while 4+ workers keep serving hits); a `cold_queue` of
    /// `workers` or more means no query is ever shed in practice.
    pub cold_queue: usize,
    /// Optional snapshot file (see [`Service::snapshot`]) whose entries are
    /// loaded into the cache on start, restoring the previous warm set.
    pub preload_from: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache: CacheConfig::default(),
            build_schedules: false,
            max_inflight_cold: 0,
            cold_queue: 16,
            preload_from: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the snapshot file to preload the cache from on start.
    pub fn preload(mut self, path: impl Into<PathBuf>) -> Self {
        self.preload_from = Some(path.into());
        self
    }
}

/// How a particular response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// Found in the solution cache.
    Cache,
    /// Solved cold by the responding worker.
    Solve,
    /// Parked on another query's in-flight solve (single-flight dedup).
    Coalesced,
}

/// A successful response: the (shared) answer plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Served {
    /// The answer, shared with the cache and any coalesced waiters.
    pub answer: Arc<Answer>,
    /// How this particular response was produced.
    pub via: ServedVia,
}

/// Why a query was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was invalid, the problem infeasible, or the solve failed.
    Failed(ServiceError),
    /// The query needed a cold solve but the admission gate was saturated
    /// (see [`ServiceConfig::max_inflight_cold`]): the service chose to shed
    /// it rather than degrade cached traffic.  Retrying later is reasonable —
    /// nothing is wrong with the query itself.
    Shed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Failed(e) => write!(f, "{e}"),
            ServeError::Shed => write!(f, "shed under cold-solve overload"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServiceError> for ServeError {
    fn from(e: ServiceError) -> Self {
        ServeError::Failed(e)
    }
}

/// Result type delivered on a response channel.
pub type ServeResult = Result<Served, ServeError>;

/// Counters describing a service's traffic so far.  Cache counters are
/// folded in: `hits + misses == queries` for well-formed queries (coalesced
/// queries count as misses — they reached the in-flight table).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted by workers.
    pub queries: u64,
    /// Responses served straight from the cache.
    pub hits: u64,
    /// Cache lookups that found nothing.
    pub misses: u64,
    /// Queries parked on an identical in-flight solve.
    pub coalesced: u64,
    /// Cold LP solves attempted (successful or not).
    pub solves: u64,
    /// Successful solves warm-started from a cached structural-class basis
    /// that installed cleanly.
    pub warm_solves: u64,
    /// Successful from-scratch solves (no usable basis for the structural
    /// class).  `warm_solves + cold_solves <= solves`; the difference is
    /// failed attempts, which record neither pivots nor latency.
    pub cold_solves: u64,
    /// Simplex pivots spent in warm-started solves.
    pub warm_pivots: u64,
    /// Simplex pivots spent in from-scratch solves.
    pub cold_pivots: u64,
    /// Wall-clock nanoseconds spent in warm-started solves.
    pub warm_solve_nanos: u64,
    /// Wall-clock nanoseconds spent in from-scratch solves.
    pub cold_solve_nanos: u64,
    /// Queries shed by cold-solve admission control.
    pub shed: u64,
    /// Error responses delivered (bad query, infeasible problem or panicked
    /// solve; coalesced waiters on a failed solve count once each).
    pub errors: u64,
    /// Answers inserted into the cache.
    pub insertions: u64,
    /// Cache entries displaced by LRU eviction.
    pub evictions: u64,
    /// Answers currently cached.
    pub cached_entries: usize,
}

impl ServiceStats {
    /// Fraction of cache lookups that hit (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        CacheStats { hits: self.hits, misses: self.misses, ..CacheStats::default() }.hit_ratio()
    }

    /// Mean simplex pivots per warm-started solve (0 when none ran).
    pub fn mean_warm_pivots(&self) -> f64 {
        mean(self.warm_pivots, self.warm_solves)
    }

    /// Mean simplex pivots per from-scratch solve (0 when none ran).
    pub fn mean_cold_pivots(&self) -> f64 {
        mean(self.cold_pivots, self.cold_solves)
    }

    /// Mean wall-clock microseconds per warm-started solve (0 when none ran).
    pub fn mean_warm_solve_micros(&self) -> f64 {
        mean(self.warm_solve_nanos, self.warm_solves) / 1_000.0
    }

    /// Mean wall-clock microseconds per from-scratch solve (0 when none ran).
    pub fn mean_cold_solve_micros(&self) -> f64 {
        mean(self.cold_solve_nanos, self.cold_solves) / 1_000.0
    }

    /// Counter increments between the `earlier` snapshot and this one, for
    /// isolating one load run on a service that has already served traffic.
    /// `cached_entries` is a gauge, not a counter, and keeps this snapshot's
    /// value.
    pub fn since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            queries: self.queries.saturating_sub(earlier.queries),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            solves: self.solves.saturating_sub(earlier.solves),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
            warm_pivots: self.warm_pivots.saturating_sub(earlier.warm_pivots),
            cold_pivots: self.cold_pivots.saturating_sub(earlier.cold_pivots),
            warm_solve_nanos: self.warm_solve_nanos.saturating_sub(earlier.warm_solve_nanos),
            cold_solve_nanos: self.cold_solve_nanos.saturating_sub(earlier.cold_solve_nanos),
            shed: self.shed.saturating_sub(earlier.shed),
            errors: self.errors.saturating_sub(earlier.errors),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            cached_entries: self.cached_entries,
        }
    }
}

fn mean(total: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

struct Job {
    query: Query,
    reply: Sender<ServeResult>,
}

/// A query parked on another query's in-flight solve.  The platform is kept
/// so the fan-out can strip the schedule when the waiter's numbering differs
/// from the solver's (see [`tailor`]).
struct Waiter {
    platform: Platform,
    reply: Sender<ServeResult>,
}

type InFlight = Mutex<HashMap<u64, Vec<Waiter>>>;

/// Adapts a shared answer to one caller: schedules are expressed in the node
/// numbering of the platform they were solved on, so a caller holding an
/// isomorphic but differently numbered platform gets the answer with the
/// schedule stripped (throughput is numbering-invariant and always served).
fn tailor(answer: &Arc<Answer>, platform: &Platform) -> Arc<Answer> {
    if answer.schedule.is_none() || answer.platform == *platform {
        Arc::clone(answer)
    } else {
        Arc::new(Answer {
            fingerprint: answer.fingerprint,
            platform: answer.platform.clone(),
            throughput: answer.throughput.clone(),
            schedule: None,
        })
    }
}

/// State of the cold-solve admission gate.
#[derive(Default)]
struct GateState {
    running: usize,
    waiting: usize,
}

/// Bounds the number of concurrently running cold solves.  Admission either
/// succeeds (possibly after waiting in a bounded queue) or tells the caller
/// to shed; a [`ColdSlot`] releases the slot on drop so a panicking solve
/// cannot leak capacity.
struct ColdGate {
    /// 0 means the gate is disabled (unlimited cold solves).
    max_running: usize,
    max_waiting: usize,
    state: std::sync::Mutex<GateState>,
    freed: std::sync::Condvar,
}

enum Admission {
    Admitted,
    Shed,
}

impl ColdGate {
    fn new(max_running: usize, max_waiting: usize) -> ColdGate {
        ColdGate {
            max_running,
            max_waiting,
            state: std::sync::Mutex::new(GateState::default()),
            freed: std::sync::Condvar::new(),
        }
    }

    /// Waits for a cold-solve slot, or decides to shed when both the slots
    /// and the waiting queue are full.
    fn admit(&self) -> Admission {
        if self.max_running == 0 {
            return Admission::Admitted;
        }
        let mut state = self.state.lock().expect("gate lock");
        if state.running >= self.max_running {
            if state.waiting >= self.max_waiting {
                return Admission::Shed;
            }
            state.waiting += 1;
            while state.running >= self.max_running {
                state = self.freed.wait(state).expect("gate lock");
            }
            state.waiting -= 1;
        }
        state.running += 1;
        Admission::Admitted
    }

    fn release(&self) {
        if self.max_running == 0 {
            return;
        }
        let mut state = self.state.lock().expect("gate lock");
        state.running -= 1;
        drop(state);
        self.freed.notify_one();
    }
}

/// Releases the admission-gate slot on drop (normal exit or unwinding).
struct ColdSlot<'a> {
    gate: &'a ColdGate,
}

impl Drop for ColdSlot<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

struct Shared {
    cache: SolutionCache,
    in_flight: InFlight,
    /// Winning basis per structural class (cost-blind fingerprint), used to
    /// warm-start cold solves of platforms that differ only in edge costs.
    bases: Mutex<HashMap<u64, SolvedBasis>>,
    gate: ColdGate,
    build_schedules: bool,
    queries: AtomicU64,
    coalesced: AtomicU64,
    solves: AtomicU64,
    warm_solves: AtomicU64,
    cold_solves: AtomicU64,
    warm_pivots: AtomicU64,
    cold_pivots: AtomicU64,
    warm_solve_nanos: AtomicU64,
    cold_solve_nanos: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

/// A running query-serving engine.  Dropping the service disconnects the
/// submission channel and joins every worker.
pub struct Service {
    submit: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Service {
    /// Starts the worker pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when [`ServiceConfig::preload_from`] points to an unreadable or
    /// malformed snapshot — a serving process is better off failing fast than
    /// silently starting with an empty cache.  Use [`Service::preload`] after
    /// a plain start for a fallible reload.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            cache: SolutionCache::new(&config.cache),
            in_flight: Mutex::new(HashMap::new()),
            bases: Mutex::new(HashMap::new()),
            gate: ColdGate::new(config.max_inflight_cold, config.cold_queue),
            build_schedules: config.build_schedules,
            queries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            warm_solves: AtomicU64::new(0),
            cold_solves: AtomicU64::new(0),
            warm_pivots: AtomicU64::new(0),
            cold_pivots: AtomicU64::new(0),
            warm_solve_nanos: AtomicU64::new(0),
            cold_solve_nanos: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let (submit, jobs) = unbounded::<Job>();
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..workers)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("steady-service-{i}"))
                    .spawn(move || worker_loop(&jobs, &shared))
                    .expect("spawning a service worker")
            })
            .collect();
        let service = Service { submit: Some(submit), workers, shared };
        if let Some(path) = &config.preload_from {
            service.preload(path).expect("preloading the configured snapshot");
        }
        service
    }

    /// Enqueues `query` and returns the channel its response will arrive on.
    pub fn submit(&self, query: Query) -> Receiver<ServeResult> {
        let (reply, response) = unbounded();
        let submit = self.submit.as_ref().expect("service is running");
        submit.send(Job { query, reply }).expect("workers outlive the submission side");
        response
    }

    /// Submits `query` and blocks until its response arrives.
    pub fn query(&self, query: Query) -> ServeResult {
        self.submit(query).recv().map_err(|_| {
            ServeError::Failed(ServiceError("the service shut down before responding".into()))
        })?
    }

    /// Writes the cache's `fingerprint → throughput` entries to `path` as a
    /// JSON snapshot (see [`crate::persist`]) and returns how many were
    /// written.  Schedules are not persisted — restored entries answer with
    /// `schedule: None`, like any isomorphic cache hit.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> Result<usize, ServiceError> {
        let entries: Vec<persist::SnapshotEntry> = self
            .shared
            .cache
            .entries()
            .into_iter()
            .map(|(key, answer)| (key, answer.throughput.clone()))
            .collect();
        persist::write_snapshot(&entries, path.as_ref())?;
        Ok(entries.len())
    }

    /// Loads a snapshot written by [`Service::snapshot`] into the cache and
    /// returns how many entries were inserted.
    ///
    /// Snapshots persist only `fingerprint → throughput`, so a restored
    /// [`Answer`] carries an **empty** [`Answer::platform`] and no schedule;
    /// consumers reading those fields must treat restored hits like
    /// isomorphic-but-renumbered ones (exact throughput, nothing
    /// numbering-dependent).
    pub fn preload(&self, path: impl AsRef<Path>) -> Result<usize, ServiceError> {
        let entries = persist::read_snapshot(path.as_ref())?;
        let count = entries.len();
        for (key, throughput) in entries {
            let answer = Answer {
                fingerprint: Fingerprint(key),
                // The platform a snapshot entry was solved on is gone; an
                // empty stand-in is fine because restored answers carry no
                // schedule, the only platform-numbering-sensitive payload.
                platform: Platform::new(),
                throughput,
                schedule: None,
            };
            self.shared.cache.insert(key, Arc::new(answer));
        }
        Ok(count)
    }

    /// A snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = self.shared.cache.stats();
        ServiceStats {
            queries: self.shared.queries.load(Ordering::Relaxed),
            hits: cache.hits,
            misses: cache.misses,
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            solves: self.shared.solves.load(Ordering::Relaxed),
            warm_solves: self.shared.warm_solves.load(Ordering::Relaxed),
            cold_solves: self.shared.cold_solves.load(Ordering::Relaxed),
            warm_pivots: self.shared.warm_pivots.load(Ordering::Relaxed),
            cold_pivots: self.shared.cold_pivots.load(Ordering::Relaxed),
            warm_solve_nanos: self.shared.warm_solve_nanos.load(Ordering::Relaxed),
            cold_solve_nanos: self.shared.cold_solve_nanos.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            insertions: cache.insertions,
            evictions: cache.evictions,
            cached_entries: self.shared.cache.len(),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Disconnect the channel so idle workers' recv() fails and they exit.
        self.submit = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // The receiver lock is held only while waiting for the next job, not
        // while serving it, so dispatch is serialized but solves overlap.
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // A panicking solve must not shrink the pool: contain it here.  The
        // panicking job's reply sender is dropped during unwinding, so its
        // caller sees a disconnect error rather than a hang; parked waiters
        // are released by the in-flight drop guard inside `serve`.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve(shared, job)));
    }
}

/// Removes an in-flight entry when dropped, failing any parked waiters.
///
/// `serve` disarms the guard on the normal path (after fanning the real
/// outcome out); if the solve panics, the guard runs during unwinding so the
/// key does not stay in the table forever — without it, every waiter would
/// block indefinitely and all future queries for the fingerprint would park
/// on a solve that no longer exists.
struct InFlightGuard<'a> {
    shared: &'a Shared,
    key: u64,
    armed: bool,
}

impl InFlightGuard<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let waiters = self.shared.in_flight.lock().remove(&self.key).unwrap_or_default();
        // The solver's own query failed too: one error for it (its reply
        // sender dies with the unwinding stack) plus one per parked waiter.
        self.shared.errors.fetch_add(1 + waiters.len() as u64, Ordering::Relaxed);
        for waiter in waiters {
            let _ = waiter.reply.send(Err(ServeError::Failed(ServiceError(
                "the solve for this query panicked".into(),
            ))));
        }
    }
}

fn serve(shared: &Shared, job: Job) {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    if let Err(e) = job.query.validate() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Err(ServeError::Failed(e)));
        return;
    }
    let fingerprint = job.query.fingerprint();
    let key = fingerprint.0;

    if let Some(answer) = shared.cache.get(key) {
        let answer = tailor(&answer, &job.query.platform);
        let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
        return;
    }

    // Single-flight admission: park on an identical in-flight solve, or
    // register ourselves as the solver for this key.
    {
        let mut in_flight = shared.in_flight.lock();
        // The solve may have completed between the miss above and taking the
        // lock; re-check (without double-counting the miss) before admitting.
        if let Some(answer) = shared.cache.peek(key) {
            let answer = tailor(&answer, &job.query.platform);
            let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
            return;
        }
        if let Some(waiters) = in_flight.get_mut(&key) {
            waiters.push(Waiter { platform: job.query.platform, reply: job.reply });
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        in_flight.insert(key, Vec::new());
    }
    let mut guard = InFlightGuard { shared, key, armed: true };

    // Admission control: this query needs a cold solve.  Wait for a slot in
    // the bounded queue, or shed — releasing every waiter that coalesced onto
    // us in the meantime, since no solve for this key is going to happen.
    let _slot = match shared.gate.admit() {
        Admission::Admitted => ColdSlot { gate: &shared.gate },
        Admission::Shed => {
            let waiters = shared.in_flight.lock().remove(&key).unwrap_or_default();
            guard.disarm();
            shared.shed.fetch_add(1 + waiters.len() as u64, Ordering::Relaxed);
            let _ = job.reply.send(Err(ServeError::Shed));
            for waiter in waiters {
                let _ = waiter.reply.send(Err(ServeError::Shed));
            }
            return;
        }
    };

    shared.solves.fetch_add(1, Ordering::Relaxed);
    // Warm-start seed: the winning basis of this query's structural class
    // (same topology and roles, possibly different costs), if any.
    let structural_key = job.query.structural_fingerprint().0;
    let warm = shared.bases.lock().get(&structural_key).cloned();
    // The query was already validated and fingerprinted above; solve_prepared
    // skips redoing both on the hot path.
    let solve_started = Instant::now();
    let outcome =
        match solve_prepared(&job.query, fingerprint, shared.build_schedules, warm.as_ref()) {
            Ok((answer, report)) => {
                let nanos = solve_started.elapsed().as_nanos() as u64;
                if report.warm_started {
                    shared.warm_solves.fetch_add(1, Ordering::Relaxed);
                    shared.warm_pivots.fetch_add(report.iterations as u64, Ordering::Relaxed);
                    shared.warm_solve_nanos.fetch_add(nanos, Ordering::Relaxed);
                } else {
                    shared.cold_solves.fetch_add(1, Ordering::Relaxed);
                    shared.cold_pivots.fetch_add(report.iterations as u64, Ordering::Relaxed);
                    shared.cold_solve_nanos.fetch_add(nanos, Ordering::Relaxed);
                }
                if let Some(basis) = report.basis {
                    let mut bases = shared.bases.lock();
                    if bases.len() < MAX_CACHED_BASES || bases.contains_key(&structural_key) {
                        bases.insert(structural_key, basis);
                    }
                }
                let answer = Arc::new(answer);
                shared.cache.insert(key, Arc::clone(&answer));
                Ok(answer)
            }
            Err(e) => Err(e),
        };

    let waiters = shared.in_flight.lock().remove(&key).unwrap_or_default();
    guard.disarm();
    if outcome.is_err() {
        // One error response per caller: the solver's own plus every waiter.
        shared.errors.fetch_add(1 + waiters.len() as u64, Ordering::Relaxed);
    }
    // The solver's own job gets the full answer (it is the numbering the
    // schedule was built in); waiters get it tailored to their platforms.
    let respond = |platform: Option<&Platform>, via: ServedVia| match &outcome {
        Ok(answer) => Ok(Served {
            answer: platform.map_or_else(|| Arc::clone(answer), |p| tailor(answer, p)),
            via,
        }),
        Err(e) => Err(ServeError::Failed(e.clone())),
    };
    let _ = job.reply.send(respond(None, ServedVia::Solve));
    for waiter in waiters {
        let _ = waiter.reply.send(respond(Some(&waiter.platform), ServedVia::Coalesced));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Collective;
    use steady_platform::generators::figure2;
    use steady_platform::NodeId;
    use steady_rational::rat;

    fn figure2_query() -> Query {
        let instance = figure2();
        Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        }
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let first = service.query(figure2_query()).unwrap();
        assert_eq!(first.via, ServedVia::Solve);
        assert_eq!(first.answer.throughput, rat(1, 2));
        let second = service.query(figure2_query()).unwrap();
        assert_eq!(second.via, ServedVia::Cache);
        assert_eq!(second.answer.throughput, rat(1, 2));
        let stats = service.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cached_entries, 1);
    }

    #[test]
    fn schedules_are_built_when_configured() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let served = service.query(figure2_query()).unwrap();
        let schedule = served.answer.schedule.as_ref().expect("schedule built");
        assert_eq!(schedule.throughput(), rat(1, 2));
    }

    #[test]
    fn relabeled_cache_hits_drop_the_schedule_but_keep_the_throughput() {
        use crate::fingerprint::permuted_platform;

        let service = Service::start(ServiceConfig {
            workers: 2,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let cold = service.query(figure2_query()).unwrap();
        assert!(cold.answer.schedule.is_some(), "solver's own numbering keeps the schedule");

        // The same query with every node renumbered: same fingerprint, same
        // throughput, but the cached schedule's node ids would be wrong.
        let instance = figure2();
        let perm = [4, 0, 1, 2, 3];
        let relabeled = Query {
            platform: permuted_platform(&instance.platform, &perm),
            collective: Collective::Scatter {
                source: NodeId(perm[instance.source.index()]),
                targets: instance.targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
            },
        };
        let served = service.query(relabeled).unwrap();
        assert_eq!(served.via, ServedVia::Cache);
        assert_eq!(served.answer.throughput, cold.answer.throughput);
        assert!(served.answer.schedule.is_none(), "foreign numbering must not get a schedule");

        // An exact repeat still gets the schedule.
        let repeat = service.query(figure2_query()).unwrap();
        assert_eq!(repeat.via, ServedVia::Cache);
        assert!(repeat.answer.schedule.is_some());
    }

    #[test]
    fn invalid_queries_get_error_responses() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let mut query = figure2_query();
        query.collective = Collective::Scatter { source: NodeId(42), targets: vec![NodeId(1)] };
        assert!(service.query(query).is_err());
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn cost_drift_queries_warm_start_from_the_structural_class() {
        use steady_platform::generators::heterogeneous_star;

        let star_scatter = |costs: &[steady_rational::Ratio]| {
            let (platform, center, leaves) = heterogeneous_star(costs);
            Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
        };
        let base = star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
        let drifted = star_scatter(&[rat(1, 3), rat(1, 5), rat(2, 3)]);
        assert_ne!(base.fingerprint(), drifted.fingerprint());
        assert_eq!(base.structural_fingerprint(), drifted.structural_fingerprint());

        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let cold = service.query(base).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);
        let warm = service.query(drifted.clone()).unwrap();
        assert_eq!(warm.via, ServedVia::Solve, "a drifted platform is still a cache miss");
        let stats = service.stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.warm_solves, 1, "the second solve reuses the class basis: {stats:?}");
        // Warm-started answers are bit-identical to from-scratch answers.
        let from_scratch = crate::query::solve_query(&drifted, false).unwrap();
        assert_eq!(warm.answer.throughput, from_scratch.throughput);
    }

    #[test]
    fn admission_gate_queues_or_sheds_cold_queries() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use steady_platform::generators::{random_connected, RandomConfig};

        let expensive = |seed: u64| {
            let config = RandomConfig { nodes: 8, ..RandomConfig::default() };
            let platform = random_connected(&config, &mut StdRng::seed_from_u64(seed));
            let participants: Vec<NodeId> = platform.node_ids().collect();
            Query {
                platform,
                collective: Collective::Reduce {
                    participants,
                    target: NodeId(0),
                    size: rat(1, 1),
                    task_cost: rat(1, 1),
                },
            }
        };

        // Queue mode: one solve slot, a queue deep enough for everyone — all
        // four distinct cold queries must eventually be served, one at a time.
        let service = Service::start(ServiceConfig {
            workers: 4,
            max_inflight_cold: 1,
            cold_queue: 16,
            ..ServiceConfig::default()
        });
        let responses: Vec<_> = (0..4).map(|i| service.submit(expensive(i))).collect();
        for response in responses {
            assert!(response.recv().unwrap().is_ok(), "queued cold queries are served");
        }
        let stats = service.stats();
        assert_eq!(stats.solves, 4);
        assert_eq!(stats.shed, 0);

        // Shed mode: one slot, no queue — concurrent cold queries beyond the
        // slot are shed with the distinct variant, not errors.
        let service = Service::start(ServiceConfig {
            workers: 4,
            max_inflight_cold: 1,
            cold_queue: 0,
            ..ServiceConfig::default()
        });
        let responses: Vec<_> = (10..14).map(|i| service.submit(expensive(i))).collect();
        let mut served = 0u64;
        let mut shed = 0u64;
        for response in responses {
            match response.recv().unwrap() {
                Ok(_) => served += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(ServeError::Failed(e)) => panic!("unexpected failure: {e}"),
            }
        }
        assert_eq!(served + shed, 4);
        assert!(served >= 1, "the slot holder is always served");
        let stats = service.stats();
        assert_eq!(stats.shed, shed);
        assert_eq!(stats.errors, 0, "shed responses are not errors");
    }

    #[test]
    fn snapshot_round_trip_restores_the_warm_set() {
        let dir = std::env::temp_dir().join("steady-service-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Unique per process so concurrent test runs don't race on the file.
        let path = dir.join(format!("warmset_{}.json", std::process::id()));

        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let cold = service.query(figure2_query()).unwrap();
        assert_eq!(cold.via, ServedVia::Solve);
        assert_eq!(service.snapshot(&path).unwrap(), 1);
        drop(service);

        let restored =
            Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() }.preload(&path));
        let served = restored.query(figure2_query()).unwrap();
        assert_eq!(served.via, ServedVia::Cache, "restored entries serve without a solve");
        assert_eq!(served.answer.throughput, cold.answer.throughput);
        assert_eq!(restored.stats().solves, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_joins_workers() {
        let service = Service::start(ServiceConfig { workers: 3, ..ServiceConfig::default() });
        let _ = service.query(figure2_query()).unwrap();
        drop(service); // must not hang
    }
}
