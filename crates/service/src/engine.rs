//! The serving engine: a worker pool with single-flight deduplication.
//!
//! Queries are submitted to an unbounded crossbeam channel and picked up by a
//! fixed pool of worker threads (the threaded-executor shape: workers share
//! one receiver and a common stop condition — here, channel disconnection).
//! Each worker:
//!
//! 1. fingerprints the query and consults the [`SolutionCache`];
//! 2. on a miss, checks the **in-flight table**: if an identical (isomorphic)
//!    query is already being solved, the reply channel is parked on that
//!    solve instead of stampeding the LP — *single-flight* deduplication;
//! 3. otherwise solves cold, publishes the answer to the cache, and fans the
//!    result out to every parked waiter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use steady_platform::Platform;

use crate::cache::{CacheConfig, CacheStats, SolutionCache};
use crate::query::{solve_prepared, Answer, Query};
use crate::ServiceError;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (0 means one per available CPU).
    pub workers: usize,
    /// Solution-cache sizing.
    pub cache: CacheConfig,
    /// Whether answers include an explicit periodic schedule (slower solves,
    /// richer answers).
    pub build_schedules: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 4, cache: CacheConfig::default(), build_schedules: false }
    }
}

/// How a particular response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// Found in the solution cache.
    Cache,
    /// Solved cold by the responding worker.
    Solve,
    /// Parked on another query's in-flight solve (single-flight dedup).
    Coalesced,
}

/// A successful response: the (shared) answer plus how it was obtained.
#[derive(Debug, Clone)]
pub struct Served {
    /// The answer, shared with the cache and any coalesced waiters.
    pub answer: Arc<Answer>,
    /// How this particular response was produced.
    pub via: ServedVia,
}

/// Result type delivered on a response channel.
pub type ServeResult = Result<Served, ServiceError>;

/// Counters describing a service's traffic so far.  Cache counters are
/// folded in: `hits + misses == queries` for well-formed queries (coalesced
/// queries count as misses — they reached the in-flight table).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries accepted by workers.
    pub queries: u64,
    /// Responses served straight from the cache.
    pub hits: u64,
    /// Cache lookups that found nothing.
    pub misses: u64,
    /// Queries parked on an identical in-flight solve.
    pub coalesced: u64,
    /// Cold LP solves performed.
    pub solves: u64,
    /// Error responses delivered (bad query, infeasible problem or panicked
    /// solve; coalesced waiters on a failed solve count once each).
    pub errors: u64,
    /// Answers inserted into the cache.
    pub insertions: u64,
    /// Cache entries displaced by LRU eviction.
    pub evictions: u64,
    /// Answers currently cached.
    pub cached_entries: usize,
}

impl ServiceStats {
    /// Fraction of cache lookups that hit (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        CacheStats { hits: self.hits, misses: self.misses, ..CacheStats::default() }.hit_ratio()
    }

    /// Counter increments between the `earlier` snapshot and this one, for
    /// isolating one load run on a service that has already served traffic.
    /// `cached_entries` is a gauge, not a counter, and keeps this snapshot's
    /// value.
    pub fn since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            queries: self.queries.saturating_sub(earlier.queries),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            solves: self.solves.saturating_sub(earlier.solves),
            errors: self.errors.saturating_sub(earlier.errors),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            cached_entries: self.cached_entries,
        }
    }
}

struct Job {
    query: Query,
    reply: Sender<ServeResult>,
}

/// A query parked on another query's in-flight solve.  The platform is kept
/// so the fan-out can strip the schedule when the waiter's numbering differs
/// from the solver's (see [`tailor`]).
struct Waiter {
    platform: Platform,
    reply: Sender<ServeResult>,
}

type InFlight = Mutex<HashMap<u64, Vec<Waiter>>>;

/// Adapts a shared answer to one caller: schedules are expressed in the node
/// numbering of the platform they were solved on, so a caller holding an
/// isomorphic but differently numbered platform gets the answer with the
/// schedule stripped (throughput is numbering-invariant and always served).
fn tailor(answer: &Arc<Answer>, platform: &Platform) -> Arc<Answer> {
    if answer.schedule.is_none() || answer.platform == *platform {
        Arc::clone(answer)
    } else {
        Arc::new(Answer {
            fingerprint: answer.fingerprint,
            platform: answer.platform.clone(),
            throughput: answer.throughput.clone(),
            schedule: None,
        })
    }
}

struct Shared {
    cache: SolutionCache,
    in_flight: InFlight,
    build_schedules: bool,
    queries: AtomicU64,
    coalesced: AtomicU64,
    solves: AtomicU64,
    errors: AtomicU64,
}

/// A running query-serving engine.  Dropping the service disconnects the
/// submission channel and joins every worker.
pub struct Service {
    submit: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Service {
    /// Starts the worker pool described by `config`.
    pub fn start(config: ServiceConfig) -> Service {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            cache: SolutionCache::new(&config.cache),
            in_flight: Mutex::new(HashMap::new()),
            build_schedules: config.build_schedules,
            queries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let (submit, jobs) = unbounded::<Job>();
        let jobs = Arc::new(Mutex::new(jobs));
        let workers = (0..workers)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("steady-service-{i}"))
                    .spawn(move || worker_loop(&jobs, &shared))
                    .expect("spawning a service worker")
            })
            .collect();
        Service { submit: Some(submit), workers, shared }
    }

    /// Enqueues `query` and returns the channel its response will arrive on.
    pub fn submit(&self, query: Query) -> Receiver<ServeResult> {
        let (reply, response) = unbounded();
        let submit = self.submit.as_ref().expect("service is running");
        submit.send(Job { query, reply }).expect("workers outlive the submission side");
        response
    }

    /// Submits `query` and blocks until its response arrives.
    pub fn query(&self, query: Query) -> ServeResult {
        self.submit(query)
            .recv()
            .map_err(|_| ServiceError("the service shut down before responding".into()))?
    }

    /// A snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = self.shared.cache.stats();
        ServiceStats {
            queries: self.shared.queries.load(Ordering::Relaxed),
            hits: cache.hits,
            misses: cache.misses,
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            solves: self.shared.solves.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            insertions: cache.insertions,
            evictions: cache.evictions,
            cached_entries: self.shared.cache.len(),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Disconnect the channel so idle workers' recv() fails and they exit.
        self.submit = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(jobs: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // The receiver lock is held only while waiting for the next job, not
        // while serving it, so dispatch is serialized but solves overlap.
        let job = match jobs.lock().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // A panicking solve must not shrink the pool: contain it here.  The
        // panicking job's reply sender is dropped during unwinding, so its
        // caller sees a disconnect error rather than a hang; parked waiters
        // are released by the in-flight drop guard inside `serve`.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve(shared, job)));
    }
}

/// Removes an in-flight entry when dropped, failing any parked waiters.
///
/// `serve` disarms the guard on the normal path (after fanning the real
/// outcome out); if the solve panics, the guard runs during unwinding so the
/// key does not stay in the table forever — without it, every waiter would
/// block indefinitely and all future queries for the fingerprint would park
/// on a solve that no longer exists.
struct InFlightGuard<'a> {
    shared: &'a Shared,
    key: u64,
    armed: bool,
}

impl InFlightGuard<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let waiters = self.shared.in_flight.lock().remove(&self.key).unwrap_or_default();
        // The solver's own query failed too: one error for it (its reply
        // sender dies with the unwinding stack) plus one per parked waiter.
        self.shared.errors.fetch_add(1 + waiters.len() as u64, Ordering::Relaxed);
        for waiter in waiters {
            let _ =
                waiter.reply.send(Err(ServiceError("the solve for this query panicked".into())));
        }
    }
}

fn serve(shared: &Shared, job: Job) {
    shared.queries.fetch_add(1, Ordering::Relaxed);
    if let Err(e) = job.query.validate() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Err(e));
        return;
    }
    let fingerprint = job.query.fingerprint();
    let key = fingerprint.0;

    if let Some(answer) = shared.cache.get(key) {
        let answer = tailor(&answer, &job.query.platform);
        let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
        return;
    }

    // Single-flight admission: park on an identical in-flight solve, or
    // register ourselves as the solver for this key.
    {
        let mut in_flight = shared.in_flight.lock();
        // The solve may have completed between the miss above and taking the
        // lock; re-check (without double-counting the miss) before admitting.
        if let Some(answer) = shared.cache.peek(key) {
            let answer = tailor(&answer, &job.query.platform);
            let _ = job.reply.send(Ok(Served { answer, via: ServedVia::Cache }));
            return;
        }
        if let Some(waiters) = in_flight.get_mut(&key) {
            waiters.push(Waiter { platform: job.query.platform, reply: job.reply });
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        in_flight.insert(key, Vec::new());
    }
    let mut guard = InFlightGuard { shared, key, armed: true };

    shared.solves.fetch_add(1, Ordering::Relaxed);
    // The query was already validated and fingerprinted above; solve_prepared
    // skips redoing both on the hot path.
    let outcome = match solve_prepared(&job.query, fingerprint, shared.build_schedules) {
        Ok(answer) => {
            let answer = Arc::new(answer);
            shared.cache.insert(key, Arc::clone(&answer));
            Ok(answer)
        }
        Err(e) => Err(e),
    };

    let waiters = shared.in_flight.lock().remove(&key).unwrap_or_default();
    guard.disarm();
    if outcome.is_err() {
        // One error response per caller: the solver's own plus every waiter.
        shared.errors.fetch_add(1 + waiters.len() as u64, Ordering::Relaxed);
    }
    // The solver's own job gets the full answer (it is the numbering the
    // schedule was built in); waiters get it tailored to their platforms.
    let respond = |platform: Option<&Platform>, via: ServedVia| match &outcome {
        Ok(answer) => Ok(Served {
            answer: platform.map_or_else(|| Arc::clone(answer), |p| tailor(answer, p)),
            via,
        }),
        Err(e) => Err(e.clone()),
    };
    let _ = job.reply.send(respond(None, ServedVia::Solve));
    for waiter in waiters {
        let _ = waiter.reply.send(respond(Some(&waiter.platform), ServedVia::Coalesced));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Collective;
    use steady_platform::generators::figure2;
    use steady_platform::NodeId;
    use steady_rational::rat;

    fn figure2_query() -> Query {
        let instance = figure2();
        Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        }
    }

    #[test]
    fn second_identical_query_hits_the_cache() {
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let first = service.query(figure2_query()).unwrap();
        assert_eq!(first.via, ServedVia::Solve);
        assert_eq!(first.answer.throughput, rat(1, 2));
        let second = service.query(figure2_query()).unwrap();
        assert_eq!(second.via, ServedVia::Cache);
        assert_eq!(second.answer.throughput, rat(1, 2));
        let stats = service.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cached_entries, 1);
    }

    #[test]
    fn schedules_are_built_when_configured() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let served = service.query(figure2_query()).unwrap();
        let schedule = served.answer.schedule.as_ref().expect("schedule built");
        assert_eq!(schedule.throughput(), rat(1, 2));
    }

    #[test]
    fn relabeled_cache_hits_drop_the_schedule_but_keep_the_throughput() {
        use crate::fingerprint::permuted_platform;

        let service = Service::start(ServiceConfig {
            workers: 2,
            build_schedules: true,
            ..ServiceConfig::default()
        });
        let cold = service.query(figure2_query()).unwrap();
        assert!(cold.answer.schedule.is_some(), "solver's own numbering keeps the schedule");

        // The same query with every node renumbered: same fingerprint, same
        // throughput, but the cached schedule's node ids would be wrong.
        let instance = figure2();
        let perm = [4, 0, 1, 2, 3];
        let relabeled = Query {
            platform: permuted_platform(&instance.platform, &perm),
            collective: Collective::Scatter {
                source: NodeId(perm[instance.source.index()]),
                targets: instance.targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
            },
        };
        let served = service.query(relabeled).unwrap();
        assert_eq!(served.via, ServedVia::Cache);
        assert_eq!(served.answer.throughput, cold.answer.throughput);
        assert!(served.answer.schedule.is_none(), "foreign numbering must not get a schedule");

        // An exact repeat still gets the schedule.
        let repeat = service.query(figure2_query()).unwrap();
        assert_eq!(repeat.via, ServedVia::Cache);
        assert!(repeat.answer.schedule.is_some());
    }

    #[test]
    fn invalid_queries_get_error_responses() {
        let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let mut query = figure2_query();
        query.collective = Collective::Scatter { source: NodeId(42), targets: vec![NodeId(1)] };
        assert!(service.query(query).is_err());
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn shutdown_joins_workers() {
        let service = Service::start(ServiceConfig { workers: 3, ..ServiceConfig::default() });
        let _ = service.query(figure2_query()).unwrap();
        drop(service); // must not hang
    }
}
