//! Queries served by the engine and the cold-solve path answering them.

use steady_core::gather::GatherProblem;
use steady_core::gossip::GossipProblem;
use steady_core::prefix::PrefixProblem;
use steady_core::problem::SolvedBasis;
use steady_core::reduce::ReduceProblem;
use steady_core::scatter::ScatterProblem;
use steady_core::schedule::PeriodicSchedule;
use steady_drift::{solve_steady_triaged_observed, TriageReport};
use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;

use crate::fingerprint::{fingerprint, structural_fingerprint, Fingerprint};
use crate::ServiceError;

/// The collective operation a query asks about, with its distinguished nodes.
#[derive(Debug, Clone)]
pub enum Collective {
    /// A series of scatters: `source` sends a personalized message to every
    /// target (paper §3, LP `SSSP(G)`).
    Scatter {
        /// The scattering node.
        source: NodeId,
        /// The receiving nodes (unordered).
        targets: Vec<NodeId>,
    },
    /// A series of gathers: every source sends to `sink` (dual of scatter,
    /// LP `SSG(G)`).
    Gather {
        /// The sending nodes (unordered).
        sources: Vec<NodeId>,
        /// The collecting node.
        sink: NodeId,
    },
    /// A series of personalized all-to-alls (paper §3.5, LP `SSPA2A(G)`).
    Gossip {
        /// The sending nodes (unordered).
        sources: Vec<NodeId>,
        /// The receiving nodes (unordered).
        targets: Vec<NodeId>,
    },
    /// A series of reduces (paper §4, LP `SSR(G)`).
    Reduce {
        /// The nodes contributing a value (unordered).
        participants: Vec<NodeId>,
        /// The node receiving the reduced result.
        target: NodeId,
        /// Message size of a partial result.
        size: Ratio,
        /// Cost of one reduction task.
        task_cost: Ratio,
    },
    /// A series of parallel prefixes (§6 extension).  Participants are
    /// **ordered**: participant `i` receives the reduction of ranks `0..=i`.
    Prefix {
        /// The participating nodes, in rank order.
        participants: Vec<NodeId>,
        /// Message size of a partial result.
        size: Ratio,
        /// Cost of one reduction task.
        task_cost: Ratio,
    },
}

impl Collective {
    /// Short lowercase name of the collective kind (`"scatter"`, ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Collective::Scatter { .. } => "scatter",
            Collective::Gather { .. } => "gather",
            Collective::Gossip { .. } => "gossip",
            Collective::Reduce { .. } => "reduce",
            Collective::Prefix { .. } => "prefix",
        }
    }

    /// All node ids the collective mentions.
    fn node_ids(&self) -> Vec<NodeId> {
        match self {
            Collective::Scatter { source, targets } => {
                let mut ids = vec![*source];
                ids.extend(targets);
                ids
            }
            Collective::Gather { sources, sink } => {
                let mut ids = sources.clone();
                ids.push(*sink);
                ids
            }
            Collective::Gossip { sources, targets } => {
                let mut ids = sources.clone();
                ids.extend(targets);
                ids
            }
            Collective::Reduce { participants, target, .. } => {
                let mut ids = participants.clone();
                ids.push(*target);
                ids
            }
            Collective::Prefix { participants, .. } => participants.clone(),
        }
    }
}

/// One throughput query: a platform plus a collective on it.
#[derive(Debug, Clone)]
pub struct Query {
    /// The platform graph.
    pub platform: Platform,
    /// The collective operation asked about.
    pub collective: Collective,
}

impl Query {
    /// Checks that every node id the collective mentions exists on the
    /// platform (deeper validation — reachability, compute-capability — is
    /// performed by the problem constructors during the solve).
    pub fn validate(&self) -> Result<(), ServiceError> {
        let n = self.platform.num_nodes();
        for id in self.collective.node_ids() {
            if id.index() >= n {
                return Err(ServiceError(format!(
                    "query mentions node {id} but the platform has only {n} nodes"
                )));
            }
        }
        Ok(())
    }

    /// The query's canonical fingerprint (see [`mod@crate::fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(self)
    }

    /// The query's cost-blind structural fingerprint — the warm-start class
    /// key (see [`structural_fingerprint`]).
    pub fn structural_fingerprint(&self) -> Fingerprint {
        structural_fingerprint(self)
    }
}

/// The answer to a query: optimal throughput and, optionally, an explicit
/// periodic schedule achieving it.
///
/// Throughput is invariant under node renumbering, but a schedule is not:
/// its node ids refer to [`Answer::platform`], the platform of the query
/// that produced the answer.  The engine therefore strips the schedule when
/// serving a cached answer to an *isomorphic but differently numbered*
/// query — such a caller gets the exact throughput and `schedule: None`
/// rather than a schedule that is invalid for its numbering.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Canonical fingerprint the answer is cached under.
    pub fingerprint: Fingerprint,
    /// The platform of the query this answer was solved for — the numbering
    /// the schedule's node ids refer to.  Empty (zero nodes) for entries
    /// restored from a snapshot (see `Service::preload`): the original
    /// platform is not persisted, and such answers never carry a schedule.
    pub platform: Platform,
    /// Optimal steady-state throughput (operations per time-unit).
    pub throughput: Ratio,
    /// An explicit one-port-feasible periodic schedule, if requested.
    pub schedule: Option<PeriodicSchedule>,
}

fn err<E: std::fmt::Display>(what: &'static str) -> impl Fn(E) -> ServiceError {
    move |e| ServiceError(format!("{what}: {e}"))
}

/// Solves `query` from scratch: builds the problem, runs the exact LP and —
/// when `build_schedule` is set — constructs and validates the periodic
/// schedule.
pub fn solve_query(query: &Query, build_schedule: bool) -> Result<Answer, ServiceError> {
    query.validate()?;
    solve_prepared(query, query.fingerprint(), build_schedule, None, &mut steady_lp::NoopObserver)
        .map(|(answer, _)| answer)
}

/// [`solve_query`] for a caller that has already validated the query and
/// computed its fingerprint (the engine does both before cache lookup, and
/// the WL hash is not free) — neither is redone here.  A `warm` basis from a
/// structurally identical solve feeds the drift-triage ladder
/// ([`steady_drift::solve_steady_triaged`]): still-optimal bases re-price
/// with zero pivots, primal-infeasible ones are repaired by the dual
/// simplex, anything else resolves warm or cold.  The returned
/// [`TriageReport`] carries the rung taken, the pivot count and the final
/// basis for the engine's per-class basis cache.
///
/// `obs` taps the underlying solver's event stream (phase transitions,
/// pivots, refactorizations — see [`steady_lp::instrument`]); the engine
/// passes a [`steady_lp::RecordingObserver`] when solver-event recording is
/// configured and the zero-cost [`steady_lp::NoopObserver`] otherwise.
pub(crate) fn solve_prepared<O: steady_lp::SolveObserver>(
    query: &Query,
    fingerprint: Fingerprint,
    build_schedule: bool,
    warm: Option<&SolvedBasis>,
    obs: &mut O,
) -> Result<(Answer, TriageReport), ServiceError> {
    let platform = query.platform.clone();
    // Each collective has its own problem/solution types but the exact same
    // construct → solve → build-schedule → validate tail, which only a macro
    // can share (the solve itself is already shared: every arm goes through
    // `steady_drift::solve_steady_triaged`).
    macro_rules! answer {
        ($kind:literal, $problem:expr) => {{
            let problem = $problem.map_err(err(concat!("invalid ", $kind, " query")))?;
            let (solution, report) = solve_steady_triaged_observed(&problem, warm, obs)
                .map_err(err(concat!($kind, " solve failed")))?;
            let schedule = build_schedule
                .then(|| solution.build_schedule(&problem))
                .transpose()
                .map_err(err(concat!($kind, " schedule construction failed")))?;
            if let Some(schedule) = &schedule {
                schedule
                    .validate(problem.platform())
                    .map_err(err(concat!($kind, " schedule validation failed")))?;
            }
            (solution.throughput().clone(), schedule, report)
        }};
    }
    let (throughput, schedule, report) = match &query.collective {
        Collective::Scatter { source, targets } => {
            answer!("scatter", ScatterProblem::new(platform, *source, targets.clone()))
        }
        Collective::Gather { sources, sink } => {
            answer!("gather", GatherProblem::new(platform, sources.clone(), *sink))
        }
        Collective::Gossip { sources, targets } => {
            answer!("gossip", GossipProblem::new(platform, sources.clone(), targets.clone()))
        }
        Collective::Reduce { participants, target, size, task_cost } => answer!(
            "reduce",
            ReduceProblem::new(
                platform,
                participants.clone(),
                *target,
                size.clone(),
                task_cost.clone()
            )
        ),
        Collective::Prefix { participants, size, task_cost } => answer!(
            "prefix",
            PrefixProblem::new(platform, participants.clone(), size.clone(), task_cost.clone())
        ),
    };
    Ok((Answer { fingerprint, platform: query.platform.clone(), throughput, schedule }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::figure2;
    use steady_rational::rat;

    #[test]
    fn cold_solve_matches_direct_solve() {
        let instance = figure2();
        let query = Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        };
        let answer = solve_query(&query, true).unwrap();
        assert_eq!(answer.throughput, rat(1, 2));
        let schedule = answer.schedule.expect("schedule was requested");
        schedule.validate(&query.platform).unwrap();
        assert_eq!(schedule.throughput(), rat(1, 2));
    }

    #[test]
    fn out_of_range_node_is_rejected() {
        let instance = figure2();
        let query = Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: NodeId(99), targets: vec![NodeId(1)] },
        };
        let e = solve_query(&query, false).unwrap_err();
        assert!(e.to_string().contains("only"), "unexpected message: {e}");
    }

    #[test]
    fn solver_errors_are_reported_not_panicked() {
        // A target unreachable from the source: two isolated nodes.
        let mut platform = Platform::new();
        let a = platform.add_node("a", rat(1, 1));
        let b = platform.add_node("b", rat(1, 1));
        let query =
            Query { platform, collective: Collective::Scatter { source: a, targets: vec![b] } };
        assert!(solve_query(&query, false).is_err());
    }
}
