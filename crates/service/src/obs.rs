//! Per-query lifecycle tracing for the serving core.
//!
//! Every query admitted by [`crate::engine::Service`] can carry a
//! [`QueryTrace`] — a fixed-size, heap-free record of monotonic timestamps
//! at each lifecycle edge (admitted → cache lookup → single-flight →
//! admission gate → solve → publish), plus the triage rung and per-phase
//! simplex pivot counts ([`steady_lp::SolveTrace`]) of the solve that
//! answered it.  Completed traces land in bounded per-worker ring buffers
//! ([`TraceRing`]) that **never block the hot path**: the push is a
//! `try_lock` that drops (and counts) the record on contention, and the
//! buffer overwrites (and counts) its oldest record when full.  A collector
//! drains the rings off-path and can render the result as Chrome
//! trace-event JSON ([`chrome_trace_json`]) loadable in Perfetto.
//!
//! Time comes from the [`Clock`] trait.  Production uses [`WallClock`]
//! (monotonic `Instant` nanoseconds from service start); the trait is the
//! seam where the roadmap's simulated clock plugs in — a deterministic
//! clock makes every timestamp below reproducible without touching the
//! engine.
//!
//! Tracing is **zero-allocation when off and cheap when on**: disabled, the
//! per-query cost is `Option::None` in the job struct; enabled, a
//! `QueryTrace` is a `Copy` struct threaded by value, so the only shared
//! mutable state is the ring itself (rank 50 in the
//! [`crate::sync`] lock order — a strict leaf).

use std::time::Instant;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use std::collections::VecDeque;

/// A monotonic nanosecond clock.
///
/// The single seam between the serving core and real time: every timestamp
/// in a [`QueryTrace`] and every latency histogram sample is a difference
/// of `now_nanos()` readings.  Swapping in a simulated clock (a roadmap
/// item) makes the whole observability layer deterministic.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin; must never decrease.
    fn now_nanos(&self) -> u64;
}

/// The production [`Clock`]: monotonic nanoseconds since construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> WallClock {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced [`Clock`] for tests (and the seed of the roadmap's
/// simulated clock).
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        // relaxed: test-only monotone counter; readers only need *some*
        // non-decreasing value, not ordering against other memory.
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        // relaxed: see `advance`.
        self.nanos.load(Ordering::Relaxed)
    }
}

/// The lifecycle stages of a traced query, in order.  Each stage's span is
/// the difference of two adjacent [`QueryTrace`] timestamps, so the stage
/// durations **sum exactly** to the end-to-end latency.
pub const STAGES: [&str; 6] = ["queue", "lookup", "flight", "gate", "solve", "publish"];

/// A heap-free record of one query's trip through the serving core.
///
/// All timestamps are [`Clock`] nanoseconds.  Stages a query skips (a cache
/// hit never reaches the gate) keep their timestamps equal to the previous
/// edge, so every span is well-defined and non-negative after
/// [`QueryTrace::finish`] runs its monotone fix-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Unique id (assigned at submit, monotonically increasing).
    pub id: u64,
    /// Worker that admitted (dequeued) the query.
    pub worker: u32,
    /// Worker that solved/published — differs from `worker` when the
    /// admission gate re-queued the solve to another worker.
    pub solver: u32,
    /// Query entered the submit channel.
    pub submitted_nanos: u64,
    /// A worker dequeued it.
    pub admitted_nanos: u64,
    /// Cache lookup finished.
    pub lookup_done_nanos: u64,
    /// Single-flight join-or-lead resolved (parked, fed, or led).
    pub flight_done_nanos: u64,
    /// Solve began (for gate-queued queries this is after the gate wait).
    pub solve_start_nanos: u64,
    /// Solve finished.
    pub solve_done_nanos: u64,
    /// Answer published and reply sent.
    pub end_nanos: u64,
    /// Scheduler lane the query rode (`"demand"`, `"revalidation"` or
    /// `"prefetch"`).
    pub lane: &'static str,
    /// Cache lookup outcome: `"hit"`, `"stale"` or `"miss"`.
    pub lookup: &'static str,
    /// How the query was ultimately served (mirrors
    /// [`crate::engine::ServedVia`], plus `"shed"` / `"error"` /
    /// `"prefetch"`).
    pub outcome: &'static str,
    /// Triage rung of the solve that answered (empty when no solve ran).
    pub triage: &'static str,
    /// Phase-1 (feasibility) simplex pivots of the answering solve.
    pub phase1_pivots: u32,
    /// Phase-2 (optimization) simplex pivots of the answering solve.
    pub phase2_pivots: u32,
    /// Degenerate pivots of the answering solve (zero-progress steps).
    pub degenerate_pivots: u32,
    /// Pivots taken under Bland's anti-cycling rule (non-zero means the
    /// solve degraded off Dantzig pricing).
    pub bland_pivots: u32,
    /// Time the solver spent in phase 1, nanoseconds (recorded solves only —
    /// zero when solver-event recording is off).
    pub solve_phase1_nanos: u64,
    /// Time the solver spent in phase 2, nanoseconds (recorded solves only).
    pub solve_phase2_nanos: u64,
    /// Time the solver spent in dual-simplex repair, nanoseconds (recorded
    /// solves only).
    pub solve_dual_nanos: u64,
    /// Time the solver spent refactorizing the basis, nanoseconds (recorded
    /// solves only; *included* in the surrounding phase spans).
    pub solve_refactor_nanos: u64,
    /// `true` when the admission gate queued the solve instead of running
    /// it inline (the `gate` span is then a real wait).
    pub gate_queued: bool,
}

impl QueryTrace {
    /// A fresh trace: every timestamp starts at `now` and is overwritten as
    /// the query passes each edge.
    pub fn begin(id: u64, now: u64) -> QueryTrace {
        QueryTrace {
            id,
            worker: 0,
            solver: 0,
            submitted_nanos: now,
            admitted_nanos: now,
            lookup_done_nanos: now,
            flight_done_nanos: now,
            solve_start_nanos: now,
            solve_done_nanos: now,
            end_nanos: now,
            lane: "demand",
            lookup: "",
            outcome: "",
            triage: "",
            phase1_pivots: 0,
            phase2_pivots: 0,
            degenerate_pivots: 0,
            bland_pivots: 0,
            solve_phase1_nanos: 0,
            solve_phase2_nanos: 0,
            solve_dual_nanos: 0,
            solve_refactor_nanos: 0,
            gate_queued: false,
        }
    }

    /// Records the per-phase pivot counts of the answering solve.
    pub fn set_solve(&mut self, trace: steady_lp::SolveTrace) {
        self.phase1_pivots = trace.phase1_pivots.min(u32::MAX as usize) as u32;
        self.phase2_pivots = trace.phase2_pivots.min(u32::MAX as usize) as u32;
    }

    /// Records the answering solve's health aggregate (pivot-mix counters;
    /// see [`steady_lp::SolveHealth`]).
    pub fn set_health(&mut self, health: &steady_lp::SolveHealth) {
        self.degenerate_pivots = health.degenerate_pivots.min(u32::MAX as usize) as u32;
        self.bland_pivots = health.bland_pivots.min(u32::MAX as usize) as u32;
    }

    /// Records the answering solve's per-phase time breakdown (from a
    /// [`steady_lp::SolveRecording`]); rendered as solver sub-spans nested
    /// under the solve span by [`chrome_trace_json`].
    pub fn set_breakdown(&mut self, breakdown: &steady_lp::PhaseBreakdown) {
        self.solve_phase1_nanos = breakdown.phase1_nanos;
        self.solve_phase2_nanos = breakdown.phase2_nanos;
        self.solve_dual_nanos = breakdown.dual_nanos;
        self.solve_refactor_nanos = breakdown.refactor_nanos;
    }

    /// Seals the trace: stamps the outcome and end time, then runs a
    /// monotone fix-up so skipped stages collapse to zero-length spans
    /// instead of going negative (a cache hit never wrote the solve edges,
    /// which still hold earlier values).
    pub fn finish(&mut self, outcome: &'static str, end_nanos: u64) {
        self.outcome = outcome;
        self.end_nanos = end_nanos;
        let mut floor = self.submitted_nanos;
        for stamp in [
            &mut self.admitted_nanos,
            &mut self.lookup_done_nanos,
            &mut self.flight_done_nanos,
            &mut self.solve_start_nanos,
            &mut self.solve_done_nanos,
            &mut self.end_nanos,
        ] {
            if *stamp < floor {
                *stamp = floor;
            }
            floor = *stamp;
        }
    }

    /// `(stage name, start, end)` for each of [`STAGES`], adjacent and
    /// gap-free: the spans sum exactly to `end_nanos - submitted_nanos`.
    pub fn stages(&self) -> [(&'static str, u64, u64); 6] {
        [
            ("queue", self.submitted_nanos, self.admitted_nanos),
            ("lookup", self.admitted_nanos, self.lookup_done_nanos),
            ("flight", self.lookup_done_nanos, self.flight_done_nanos),
            ("gate", self.flight_done_nanos, self.solve_start_nanos),
            ("solve", self.solve_start_nanos, self.solve_done_nanos),
            ("publish", self.solve_done_nanos, self.end_nanos),
        ]
    }

    /// End-to-end latency in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.submitted_nanos)
    }
}

/// A bounded ring buffer of completed [`QueryTrace`]s with drop accounting.
///
/// The hot-path [`TraceRing::push`] never blocks: it `try_lock`s the ring
/// and **drops the record** (counting it) if a collector holds the lock,
/// and overwrites the oldest record (counting it) when full.  The ring is
/// rank 50 — the bottom of the lock order — and the only blocking
/// acquisition is the collector's [`TraceRing::drain`], taken with no other
/// lock held.
#[derive(Debug)]
pub struct TraceRing {
    ring: Mutex<VecDeque<QueryTrace>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `capacity` (≥ 1) traces.
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Offers a completed trace.  Never blocks: on lock contention the
    /// trace is dropped; when full the **oldest** trace is evicted.  Either
    /// loss increments the drop counter, so
    /// `pushed == drained + buffered + dropped` always holds.
    pub fn push(&self, trace: QueryTrace) {
        match self.ring.try_lock() {
            Some(mut ring) => {
                if ring.len() == self.capacity {
                    ring.pop_front();
                    // relaxed: monotone loss tally; read only by collectors
                    // that tolerate a momentarily stale count.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                ring.push_back(trace);
            }
            None => {
                // relaxed: see above.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns every buffered trace (collector side; blocks on
    /// the ring lock, which writers only ever `try_lock`).
    pub fn drain(&self) -> Vec<QueryTrace> {
        let mut ring = self.ring.lock();
        ring.drain(..).collect()
    }

    /// Traces lost to contention or overwrite since construction.
    pub fn dropped(&self) -> u64 {
        // relaxed: monotone tally, point-in-time read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Buffered traces right now.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-service trace collector: one [`TraceRing`] per worker plus the
/// id source.  Workers push only to their own ring, so rings see exactly
/// one concurrent writer plus the collector.
#[derive(Debug)]
pub struct TraceSink {
    rings: Vec<TraceRing>,
    next_id: AtomicU64,
    enabled: bool,
}

impl TraceSink {
    /// A sink with one ring of `capacity` per worker.  When `enabled` is
    /// false, [`TraceSink::begin`] returns `None` and the whole tracing
    /// path costs one branch per query.
    pub fn new(workers: usize, capacity: usize, enabled: bool) -> TraceSink {
        TraceSink {
            rings: (0..workers.max(1)).map(|_| TraceRing::new(capacity)).collect(),
            next_id: AtomicU64::new(0),
            enabled,
        }
    }

    /// Whether per-query tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a trace for a query submitted at `now`, or `None` when
    /// tracing is off.
    pub fn begin(&self, now: u64) -> Option<QueryTrace> {
        if !self.enabled {
            return None;
        }
        // relaxed: unique-id counter; ids need distinctness, not ordering.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Some(QueryTrace::begin(id, now))
    }

    /// Offers a completed trace to `worker`'s ring (modulo the ring count,
    /// so callers may pass any index).
    pub fn push(&self, worker: usize, trace: QueryTrace) {
        self.rings[worker % self.rings.len()].push(trace);
    }

    /// Drains every ring, returning all buffered traces ordered by
    /// submission time.
    pub fn drain(&self) -> Vec<QueryTrace> {
        let mut all: Vec<QueryTrace> = self.rings.iter().flat_map(|r| r.drain()).collect();
        all.sort_by_key(|t| (t.submitted_nanos, t.id));
        all
    }

    /// Total traces lost across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }
}

/// One client-side request span for the trace file (recorded by the load
/// generator: wall time from send to reply, per client thread).
#[derive(Debug, Clone, Copy)]
pub struct ClientSpan {
    /// Client thread index.
    pub client: u32,
    /// Request sent, [`Clock`] nanoseconds.
    pub start_nanos: u64,
    /// Reply received.
    pub end_nanos: u64,
    /// How the request was served (same labels as [`QueryTrace::outcome`]).
    pub outcome: &'static str,
}

/// Process id used for service worker tracks in the trace file.
const SERVICE_PID: u32 = 1;
/// Process id used for client tracks.
const CLIENT_PID: u32 = 2;
/// Synthetic thread id for the admission-gate queue track.
const GATE_TID: u32 = 1000;

/// Formats `nanos` as fractional microseconds, the unit of the Chrome
/// trace-event `ts`/`dur` fields.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn push_event(out: &mut String, name: &str, pid: u32, tid: u32, start: u64, end: u64, args: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push_str(&format!(
        "\n  {{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \
         \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
        micros(start),
        micros(end.saturating_sub(start)),
    ));
}

fn push_thread_name(out: &mut String, pid: u32, tid: u32, name: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push_str(&format!(
        "\n  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{name}\"}}}}",
    ));
}

/// Emits the solver's per-phase sub-spans nested inside a solve span, on the
/// **same tid** as the owning worker so Perfetto renders them as child
/// slices of the solve.  The breakdown only records totals, so the phases
/// are laid out in their canonical order (phase 1 → dual repair → phase 2)
/// from the solve's start and clamped to its end; refactorization time is
/// included in the phases and reported as a solve-span arg instead.
fn push_solver_spans(out: &mut String, t: &QueryTrace, tid: u32, start: u64, end: u64) {
    let mut cursor = start;
    for (name, nanos) in [
        ("solver.phase1", t.solve_phase1_nanos),
        ("solver.dual-repair", t.solve_dual_nanos),
        ("solver.phase2", t.solve_phase2_nanos),
    ] {
        if nanos == 0 {
            continue;
        }
        let sub_end = cursor.saturating_add(nanos).min(end);
        if sub_end > cursor {
            push_event(out, name, SERVICE_PID, tid, cursor, sub_end, &format!("\"qid\": {}", t.id));
        }
        cursor = sub_end;
    }
}

/// Renders completed traces (and optional client spans) as Chrome
/// trace-event JSON — the format Perfetto and `chrome://tracing` load
/// directly.  One track per service worker (pid 1), one synthetic track for
/// gate-queue waits, and one track per load-generator client (pid 2).
/// Solves recorded with solver events additionally carry nested
/// `solver.phase1` / `solver.dual-repair` / `solver.phase2` child slices on
/// the owning worker's track (see `push_solver_spans`).
pub fn chrome_trace_json(traces: &[QueryTrace], clients: &[ClientSpan]) -> String {
    let mut out = String::from("{\n\"traceEvents\": [");

    let mut workers: Vec<u32> = traces.iter().flat_map(|t| [t.worker, t.solver]).collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        push_thread_name(&mut out, SERVICE_PID, w, &format!("worker-{w}"));
    }
    // Always named, even when no trace happened to queue at the gate: a
    // consistent track set lets Perfetto diffs and scripted consumers rely
    // on the metadata regardless of what this particular drain captured.
    push_thread_name(&mut out, SERVICE_PID, GATE_TID, "gate-queue");
    let mut client_ids: Vec<u32> = clients.iter().map(|c| c.client).collect();
    client_ids.sort_unstable();
    client_ids.dedup();
    for &c in &client_ids {
        push_thread_name(&mut out, CLIENT_PID, c, &format!("client-{c}"));
    }

    for t in traces {
        for (stage, start, end) in t.stages() {
            if end == start {
                continue;
            }
            // The queue/lookup/flight stages ran on the admitting worker;
            // solve/publish on the solver; a real gate wait sits on its own
            // synthetic track so queue pressure is visible at a glance.
            let tid = match stage {
                "gate" if t.gate_queued => GATE_TID,
                "solve" | "publish" => t.solver,
                _ => t.worker,
            };
            let args = match stage {
                "solve" => format!(
                    "\"qid\": {}, \"triage\": \"{}\", \"phase1_pivots\": {}, \
                     \"phase2_pivots\": {}, \"degenerate_pivots\": {}, \
                     \"bland_pivots\": {}, \"refactor_nanos\": {}",
                    t.id,
                    t.triage,
                    t.phase1_pivots,
                    t.phase2_pivots,
                    t.degenerate_pivots,
                    t.bland_pivots,
                    t.solve_refactor_nanos,
                ),
                "publish" => format!("\"qid\": {}, \"outcome\": \"{}\"", t.id, t.outcome),
                "queue" => format!("\"qid\": {}, \"lane\": \"{}\"", t.id, t.lane),
                _ => format!("\"qid\": {}", t.id),
            };
            push_event(&mut out, stage, SERVICE_PID, tid, start, end, &args);
            if stage == "solve" {
                push_solver_spans(&mut out, t, tid, start, end);
            }
        }
    }

    for c in clients {
        push_event(
            &mut out,
            "request",
            CLIENT_PID,
            c.client,
            c.start_nanos,
            c.end_nanos,
            &format!("\"outcome\": \"{}\"", c.outcome),
        );
    }

    out.push_str("\n],\n\"schema_version\": 1\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 12);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    /// The acceptance criterion: stage spans are adjacent and sum exactly
    /// to the end-to-end latency, even when stages were skipped.
    #[test]
    fn stage_spans_sum_to_total_even_with_skipped_stages() {
        // A cache hit: solve edges never written.
        let mut t = QueryTrace::begin(1, 100);
        t.admitted_nanos = 130;
        t.lookup_done_nanos = 150;
        t.finish("cache", 160);
        let sum: u64 = t.stages().iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(sum, t.total_nanos());
        assert_eq!(sum, 60);
        for window in t.stages().windows(2) {
            assert_eq!(window[0].2, window[1].1, "stages must be adjacent");
        }

        // A full cold solve through the gate.
        let mut t = QueryTrace::begin(2, 0);
        t.admitted_nanos = 10;
        t.lookup_done_nanos = 25;
        t.flight_done_nanos = 30;
        t.solve_start_nanos = 400;
        t.solve_done_nanos = 900;
        t.gate_queued = true;
        t.finish("solve-cold", 950);
        let sum: u64 = t.stages().iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(sum, 950);
        assert_eq!(t.total_nanos(), 950);
    }

    #[test]
    fn finish_repairs_out_of_order_stamps() {
        let mut t = QueryTrace::begin(3, 50);
        t.admitted_nanos = 60;
        // lookup_done left at 50 (< admitted): fix-up must clamp it.
        t.finish("error", 70);
        assert_eq!(t.lookup_done_nanos, 60);
        let sum: u64 = t.stages().iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(sum, 20);
    }

    #[test]
    fn ring_drops_oldest_when_full_and_counts() {
        let ring = TraceRing::new(2);
        for id in 0..5 {
            ring.push(QueryTrace::begin(id, id));
        }
        assert_eq!(ring.dropped(), 3);
        let drained = ring.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, 3, "oldest must be evicted first");
        assert_eq!(drained[1].id, 4);
        assert!(ring.is_empty());
        // Conservation: pushed == drained + buffered + dropped.
        assert_eq!(5, drained.len() as u64 + ring.len() as u64 + ring.dropped());
    }

    #[test]
    fn disabled_sink_begins_nothing() {
        let sink = TraceSink::new(2, 8, false);
        assert!(!sink.enabled());
        assert!(sink.begin(0).is_none());
    }

    #[test]
    fn sink_assigns_unique_ids_and_drains_sorted() {
        let sink = TraceSink::new(2, 8, true);
        let mut a = sink.begin(200).unwrap();
        let mut b = sink.begin(100).unwrap();
        assert_ne!(a.id, b.id);
        a.finish("cache", 210);
        b.finish("cache", 110);
        sink.push(0, a);
        sink.push(1, b);
        let all = sink.drain();
        assert_eq!(all.len(), 2);
        assert!(all[0].submitted_nanos <= all[1].submitted_nanos);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn chrome_trace_json_shape() {
        let mut t = QueryTrace::begin(7, 1_000);
        t.worker = 0;
        t.solver = 1;
        t.admitted_nanos = 2_000;
        t.lookup_done_nanos = 3_000;
        t.flight_done_nanos = 4_000;
        t.solve_start_nanos = 10_000;
        t.solve_done_nanos = 20_000;
        t.lookup = "miss";
        t.triage = "resolve-cold";
        t.gate_queued = true;
        t.finish("solve-cold", 21_000);
        let clients =
            [ClientSpan { client: 0, start_nanos: 500, end_nanos: 22_000, outcome: "solve-cold" }];
        let json = chrome_trace_json(&[t], &clients);

        assert!(json.starts_with("{\n\"traceEvents\": ["), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"gate-queue\""), "{json}");
        assert!(json.contains("\"worker-1\""), "{json}");
        assert!(json.contains("\"client-0\""), "{json}");
        assert!(json.contains("\"name\": \"solve\""), "{json}");
        assert!(json.contains("\"triage\": \"resolve-cold\""), "{json}");
        // The gate wait sits on the synthetic gate track.
        assert!(json.contains(&format!("\"tid\": {GATE_TID}")), "{json}");
        // Fractional-microsecond timestamps: 1000ns -> "1.000".
        assert!(json.contains("\"ts\": 1.000"), "{json}");
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        // Balanced braces (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn gate_queue_track_is_named_even_without_gated_traces() {
        let mut t = QueryTrace::begin(1, 100);
        t.admitted_nanos = 110;
        t.finish("cache", 120);
        assert!(!t.gate_queued);
        let json = chrome_trace_json(&[t], &[]);
        assert!(json.contains("\"gate-queue\""), "{json}");
        let empty = chrome_trace_json(&[], &[]);
        assert!(empty.contains("\"gate-queue\""), "{empty}");
    }

    #[test]
    fn solver_sub_spans_nest_inside_the_solve_span() {
        let mut t = QueryTrace::begin(9, 0);
        t.worker = 2;
        t.solver = 2;
        t.admitted_nanos = 100;
        t.lookup_done_nanos = 200;
        t.flight_done_nanos = 300;
        t.solve_start_nanos = 1_000;
        t.solve_done_nanos = 9_000;
        t.triage = "resolve-cold";
        t.solve_phase1_nanos = 2_000;
        t.solve_dual_nanos = 0;
        t.solve_phase2_nanos = 3_000;
        t.solve_refactor_nanos = 500;
        t.degenerate_pivots = 4;
        t.bland_pivots = 1;
        t.finish("solve-cold", 9_500);
        let json = chrome_trace_json(&[t], &[]);
        // Child slices sit on the solver's tid, inside [1000, 9000).
        assert!(json.contains("\"name\": \"solver.phase1\""), "{json}");
        assert!(json.contains("\"name\": \"solver.phase2\""), "{json}");
        assert!(!json.contains("solver.dual-repair"), "{json}");
        // phase1 starts with the solve; phase2 follows it.
        assert!(json.contains("\"ts\": 1.000, \"dur\": 2.000"), "{json}");
        assert!(json.contains("\"ts\": 3.000, \"dur\": 3.000"), "{json}");
        // Health counters and refactor time ride on the solve span's args.
        assert!(json.contains("\"degenerate_pivots\": 4"), "{json}");
        assert!(json.contains("\"bland_pivots\": 1"), "{json}");
        assert!(json.contains("\"refactor_nanos\": 500"), "{json}");
    }

    #[test]
    fn solver_sub_spans_clamp_to_the_solve_span() {
        let mut t = QueryTrace::begin(10, 0);
        t.solve_start_nanos = 1_000;
        t.solve_done_nanos = 2_000;
        // A breakdown longer than the measured span (clock skew between the
        // engine's stamps and the recorder's) must not escape the parent.
        t.solve_phase1_nanos = 5_000;
        t.solve_phase2_nanos = 5_000;
        t.finish("solve-cold", 2_000);
        let json = chrome_trace_json(&[t], &[]);
        assert!(json.contains("\"name\": \"solver.phase1\""), "{json}");
        // phase1 is clamped to the solve end; phase2 collapses to nothing.
        assert!(json.contains("\"ts\": 1.000, \"dur\": 1.000"), "{json}");
        assert!(!json.contains("solver.phase2"), "{json}");
    }

    #[test]
    fn zero_length_spans_are_omitted() {
        let mut t = QueryTrace::begin(1, 100);
        t.admitted_nanos = 110;
        t.lookup_done_nanos = 120;
        t.finish("cache", 125);
        let json = chrome_trace_json(&[t], &[]);
        assert!(!json.contains("\"name\": \"solve\""), "{json}");
        assert!(!json.contains("\"name\": \"gate\""), "{json}");
        assert!(json.contains("\"name\": \"queue\""), "{json}");
        assert!(json.contains("\"name\": \"publish\""), "{json}");
    }
}
