//! Concurrent serving of steady-state throughput queries.
//!
//! The solver stack (`steady-core`) answers one question at a time, from
//! scratch.  This crate turns it into a query-serving engine for the traffic
//! pattern of a deployment — millions of requests, most of them repeats or
//! relabelings of platforms already seen — the same way the paper amortizes
//! one collective's cost over a long pipelined series:
//!
//! * [`mod@fingerprint`] — a **canonical, relabeling-invariant fingerprint** of
//!   `(platform, collective, roles)` built from Weisfeiler–Leman color
//!   refinement, so isomorphic queries share one cache key, plus a
//!   **cost-blind structural fingerprint** grouping platforms that differ
//!   only in edge costs into one warm-start class;
//! * [`cache`] — a **sharded LRU solution cache** (`parking_lot::RwLock`
//!   shards, atomic recency, hit/miss/eviction counters);
//! * [`engine`] — a **worker pool with single-flight deduplication** over
//!   crossbeam channels: concurrent identical queries coalesce onto one
//!   in-flight LP solve instead of stampeding the solver; cold solves are
//!   **warm-started** from the cached simplex basis of their structural
//!   class and bounded by **admission control** (queue or shed under a cold
//!   stampede);
//! * [`persist`] — **snapshot persistence**: the cache's
//!   `fingerprint → throughput` entries round-trip through a JSON file so a
//!   restarted service keeps its warm set;
//! * [`loadgen`] — a **load generator** replaying repetition-heavy query
//!   mixes (including a cost-drift scenario) from several client threads and
//!   reporting sustained queries/sec, p50/p95/p99 latency, the cache hit
//!   ratio and warm-vs-cold pivot counts.
//!
//! # Example
//!
//! ```
//! use steady_service::{Collective, Query, Service, ServiceConfig, ServedVia};
//! use steady_platform::generators::figure2;
//! use steady_rational::rat;
//!
//! let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
//! let instance = figure2();
//! let query = Query {
//!     platform: instance.platform,
//!     collective: Collective::Scatter { source: instance.source, targets: instance.targets },
//! };
//!
//! let first = service.query(query.clone()).unwrap();
//! assert_eq!(first.via, ServedVia::Solve);
//! assert_eq!(first.answer.throughput, rat(1, 2));
//!
//! let second = service.query(query).unwrap();
//! assert_eq!(second.via, ServedVia::Cache);
//! assert_eq!(second.answer.throughput, rat(1, 2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod loadgen;
pub mod persist;
pub mod query;

pub use cache::{CacheConfig, CacheStats, SolutionCache};
pub use engine::{
    ServeError, ServeResult, Served, ServedVia, Service, ServiceConfig, ServiceStats,
};
pub use fingerprint::{fingerprint, permuted_platform, structural_fingerprint, Fingerprint};
pub use loadgen::{query_mix, run_load, LoadConfig, LoadReport};
pub use query::{solve_query, Answer, Collective, Query};

/// Error produced while validating or solving a query.
///
/// The payload is a rendered message: errors cross thread and channel
/// boundaries and fan out to coalesced waiters, so they must be `Clone`,
/// which the underlying solver errors are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServiceError {}
