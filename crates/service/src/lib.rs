//! Concurrent serving of steady-state throughput queries.
//!
//! The solver stack (`steady-core`) answers one question at a time, from
//! scratch.  This crate turns it into a query-serving engine for the traffic
//! pattern of a deployment — millions of requests, most of them repeats or
//! relabelings of platforms already seen — the same way the paper amortizes
//! one collective's cost over a long pipelined series:
//!
//! * [`mod@fingerprint`] — a **canonical, relabeling-invariant fingerprint** of
//!   `(platform, collective, roles)` built from Weisfeiler–Leman color
//!   refinement, so isomorphic queries share one cache key, plus a
//!   **cost-blind structural fingerprint** grouping platforms that differ
//!   only in edge costs into one warm-start class;
//! * [`cache`] — a **sharded LRU solution cache** (`parking_lot::RwLock`
//!   shards, atomic recency, hit/miss/eviction counters) whose entries carry
//!   an **epoch**: under a TTL they expire into *stale* — kept for
//!   revalidation, never silently served as fresh;
//! * [`engine`] — a **worker pool with single-flight deduplication** over
//!   crossbeam channels: concurrent identical queries coalesce onto one
//!   in-flight LP solve instead of stampeding the solver; every solve runs
//!   the **drift triage ladder** (`steady-drift`) seeded with the cached
//!   simplex basis of its structural class — still-optimal bases re-price
//!   with zero pivots, primal-infeasible ones are repaired by the dual
//!   simplex; admission control bounds concurrent solves with a
//!   **requeue-based** pending queue (waiting costs a queue slot, not a
//!   worker thread; the overflow is shed, and shed *revalidations* fall
//!   back to their stale answer);
//! * [`persist`] — **snapshot persistence**: the cache's
//!   `fingerprint → throughput` entries *and* the per-structural-class basis
//!   seeds round-trip through a JSON file, so a restarted service keeps its
//!   warm set and triages its very first drifted solves;
//! * [`loadgen`] — a **load generator** replaying repetition-heavy query
//!   mixes (including independent cost redraws, a time-correlated
//!   random-walk drift family and a lazier *forecastable* drift family)
//!   from several client threads, plus dedicated scenario runners: drift
//!   ([`run_drift_load`], triage split + exactness) and forecast
//!   ([`run_forecast_load`], speculative pre-solving hit rate).
//!
//! The engine additionally runs an **idle-time prefetch loop**: a
//! `steady-forecast` presolve plan scheduled via
//! [`Service::schedule_prefetch`] is drained by workers that find the job
//! channel empty, so predicted-next platforms are solved *before* their
//! queries arrive — landing as ordinary cache hits, `Ratio`-identical to
//! cold solves — and the cache's LRU eviction is **drift-aware**: entries
//! whose structural class has no surviving basis seed go first.
//!
//! # Example
//!
//! ```
//! use steady_service::{Collective, Query, Service, ServiceConfig, ServedVia};
//! use steady_platform::generators::figure2;
//! use steady_rational::rat;
//!
//! let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
//! let instance = figure2();
//! let query = Query {
//!     platform: instance.platform,
//!     collective: Collective::Scatter { source: instance.source, targets: instance.targets },
//! };
//!
//! let first = service.query(query.clone()).unwrap();
//! assert_eq!(first.via, ServedVia::Solve);
//! assert_eq!(first.answer.throughput, rat(1, 2));
//!
//! let second = service.query(query).unwrap();
//! assert_eq!(second.via, ServedVia::Cache);
//! assert_eq!(second.answer.throughput, rat(1, 2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod flight;
pub mod gate;
pub mod ledger;
pub mod loadgen;
pub mod metrics;
pub mod obs;
pub mod persist;
pub mod query;
pub mod recorder;
pub mod sync;

pub use cache::{CacheConfig, CacheStats, Lookup, SolutionCache};
pub use engine::{
    PrefetchJob, ServeError, ServeResult, Served, ServedVia, Service, ServiceConfig, ServiceStats,
};
pub use fingerprint::{fingerprint, permuted_platform, structural_fingerprint, Fingerprint};
pub use loadgen::{
    forecastable_drift_config, query_mix, run_drift_load, run_forecast_load, run_load, stage_table,
    DriftLoadConfig, DriftReport, ForecastLoadConfig, ForecastReport, LoadConfig, LoadReport,
};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, METRICS_SCHEMA_VERSION,
};
pub use obs::{
    chrome_trace_json, ClientSpan, Clock, ManualClock, QueryTrace, TraceRing, WallClock,
};
pub use query::{solve_query, Answer, Collective, Query};
pub use recorder::{SolveFlightRecorder, SolveRecord};
pub use steady_sched::{Lane, LaneCounters, SchedulerKind};

/// Error produced while validating or solving a query.
///
/// The payload is a rendered message: errors cross thread and channel
/// boundaries and fan out to coalesced waiters, so they must be `Clone`,
/// which the underlying solver errors are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError(pub String);

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServiceError {}
