//! Concurrency facade: every lock, atomic and channel the serving core uses
//! resolves through this module.
//!
//! Normally the names map to the real primitives (`parking_lot` locks,
//! `crossbeam` channels, `std` atomics).  Under `--cfg steady_loom` they map
//! to the `loom` shim's *modeled* primitives instead, so the model-check
//! suite (`tests/loom_models.rs`) can exhaustively enumerate thread
//! interleavings of the protocols built on top:
//!
//! ```text
//! RUSTFLAGS="--cfg steady_loom" cargo test -p steady-service --test loom_models
//! ```
//!
//! # Lock order
//!
//! The serving core's locks form a documented hierarchy; a thread may only
//! acquire a lock of **strictly higher rank** than any lock it already
//! holds.  `steady-lint` (rule `lock-order`) enforces this mechanically by
//! receiver name:
//!
//! | rank | locks                                                        |
//! |------|--------------------------------------------------------------|
//! | 10   | admission/dispatch: single-flight `table`, gate `state`, scheduler `lanes` injector (`steady_sched::sync`) |
//! | 12   | scheduler per-worker `deque`s (`steady_sched::sync`)          |
//! | 20   | side tables: `bases`, prefetch-ledger `keys`                  |
//! | 25   | background-idle latch: the `pending` count its condvar waits on (`steady_sched::sync`) |
//! | 30   | cache `shard` locks (and any `cache.` method call)            |
//! | 40   | cache `seeded` class set (and `mark_class_seeded`)            |
//! | 50   | observability leaves: per-worker trace `ring` buffers         |
//! | 55   | the solver flight `recorder` buffer (anomalous-solve ring)    |
//!
//! Ranks 10/12/25 for the scheduler's own locks live in `steady-sched`'s
//! `sync` facade (same cfg switch, same loom shim) and are listed here so
//! the hierarchy stays one table.  In particular: the single-flight
//! admission lock may call into the cache (10 → 30), the cache may consult
//! the seeded set while holding a shard (30 → 40), the lane injector bumps
//! the idle latch while holding `lanes` (10 → 25), and **never** the
//! reverse.  Trace rings and the solver flight recorder are strict leaves:
//! the hot-path push is a `try_lock` that *drops* the record on contention,
//! so nothing ever blocks on either while holding another lock.

#[cfg(not(steady_loom))]
pub use parking_lot::{Condvar, Mutex, RwLock};

#[cfg(steady_loom)]
pub use loom::sync::{Condvar, Mutex, RwLock};

/// Atomic integers (modeled under `--cfg steady_loom`).
pub mod atomic {
    #[cfg(not(steady_loom))]
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[cfg(steady_loom)]
    pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

/// Unbounded mpsc channels (modeled under `--cfg steady_loom`).  Both
/// implementations are pinned to one timeout/disconnect contract by the
/// conformance suite in `shims/loom/tests/channel_conformance.rs`.
pub mod channel {
    #[cfg(not(steady_loom))]
    pub use crossbeam::channel::{
        unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    #[cfg(steady_loom)]
    pub use loom::sync::mpsc::{
        unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };
}
