//! Concurrency facade: every lock, atomic and channel the serving core uses
//! resolves through this module.
//!
//! Normally the names map to the real primitives (`parking_lot` locks,
//! `crossbeam` channels, `std` atomics).  Under `--cfg steady_loom` they map
//! to the `loom` shim's *modeled* primitives instead, so the model-check
//! suite (`tests/loom_models.rs`) can exhaustively enumerate thread
//! interleavings of the protocols built on top:
//!
//! ```text
//! RUSTFLAGS="--cfg steady_loom" cargo test -p steady-service --test loom_models
//! ```
//!
//! # Lock order
//!
//! The serving core's locks form a documented hierarchy; a thread may only
//! acquire a lock of **strictly higher rank** than any lock it already
//! holds.  `steady-lint` (rule `lock-order`) enforces this mechanically by
//! receiver name:
//!
//! | rank | locks                                                        |
//! |------|--------------------------------------------------------------|
//! | 10   | admission/dispatch: single-flight `table`, gate `state`, worker `jobs` receiver |
//! | 20   | side tables: `bases`, `prefetch_queue`, prefetch-ledger `keys` |
//! | 30   | cache `shard` locks (and any `cache.` method call)            |
//! | 40   | cache `seeded` class set (and `mark_class_seeded`)            |
//!
//! In particular: the single-flight admission lock may call into the cache
//! (10 → 30), the cache may consult the seeded set while holding a shard
//! (30 → 40), and **never** the reverse.

#[cfg(not(steady_loom))]
pub use parking_lot::{Mutex, RwLock};

#[cfg(steady_loom)]
pub use loom::sync::{Mutex, RwLock};

/// Atomic integers (modeled under `--cfg steady_loom`).
pub mod atomic {
    #[cfg(not(steady_loom))]
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[cfg(steady_loom)]
    pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

/// Unbounded mpsc channels (modeled under `--cfg steady_loom`).  Both
/// implementations are pinned to one timeout/disconnect contract by the
/// conformance suite in `shims/loom/tests/channel_conformance.rs`.
pub mod channel {
    #[cfg(not(steady_loom))]
    pub use crossbeam::channel::{
        unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    #[cfg(steady_loom)]
    pub use loom::sync::mpsc::{
        unbounded, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };
}
