//! The prefetch ledger: cache keys installed by speculative solves that no
//! demand query has landed on yet.
//!
//! A demand query that finds one **claims** it — exactly once across all
//! racing claimants — attributing the landing as a `prefetch_hit` (claimed
//! on a cache hit) or `prefetch_wasted` (claimed by a demand solve that had
//! to re-derive the answer anyway).  The claim-at-most-once property is
//! model-checked in `tests/loom_models.rs`.
//!
//! The hot path is a lock-free emptiness probe: a relaxed mirror of the key
//! count lets every demand hit skip the lock entirely while nothing
//! speculative is outstanding (the common case).  The mirror is updated
//! while holding the key-set lock, so it can lag a concurrent `record` but
//! never reads above the true count for long; a probe that misses a
//! just-recorded key simply leaves it to be claimed by the next landing,
//! which only shifts *stat attribution*, never correctness.

use std::collections::HashSet;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Mutex;

/// Not-yet-landed prefetched keys plus the lock-free emptiness mirror.
pub struct PrefetchLedger {
    /// Rank 20 in the documented lock order (see [`crate::sync`]).
    keys: Mutex<HashSet<u64>>,
    count: AtomicUsize,
}

impl PrefetchLedger {
    /// An empty ledger.
    pub fn new() -> PrefetchLedger {
        PrefetchLedger { keys: Mutex::new(HashSet::new()), count: AtomicUsize::new(0) }
    }

    /// Records a freshly installed speculative key; returns `false` when it
    /// was already outstanding.
    pub fn record(&self, key: u64) -> bool {
        let mut keys = self.keys.lock();
        let inserted = keys.insert(key);
        if inserted {
            // relaxed: mirror updated under the `keys` lock; readers use it
            // only as an emptiness hint and re-check under the lock.
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// Claims `key` if it is outstanding — `true` for exactly one of any
    /// set of racing claimants, and exactly once per recorded key.
    pub fn claim(&self, key: u64) -> bool {
        // relaxed: emptiness probe only — a stale 0 skips the lock and
        // leaves the key for the next landing (attribution, not
        // correctness); any non-zero answer is verified under the lock.
        if self.count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut keys = self.keys.lock();
        let claimed = keys.remove(&key);
        if claimed {
            // relaxed: mirror updated under the `keys` lock (see `record`).
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        claimed
    }

    /// Number of outstanding (recorded, unclaimed) keys.
    pub fn outstanding(&self) -> usize {
        // relaxed: monotonicity is not required of this gauge; it is a
        // point-in-time observability read.
        self.count.load(Ordering::Relaxed)
    }
}

impl Default for PrefetchLedger {
    fn default() -> Self {
        PrefetchLedger::new()
    }
}
