//! The cold-solve admission gate: a bounded count of concurrently *running*
//! jobs plus a bounded queue of *pending* ones, with requeue-based waiting.
//!
//! The protocol (extracted from the engine so the model checker can explore
//! it in isolation — see `tests/loom_models.rs`):
//!
//! * [`ColdGate::admit`] takes a free slot, parks the job in the pending
//!   queue, or reports that it must be shed;
//! * a slot-holder that finishes calls [`ColdGate::release_or_takeover`]:
//!   it either *takes over* the next pending job — the slot transfers
//!   without ever being released — or, only when the queue is empty, frees
//!   the slot.
//!
//! Queueing and releasing happen under one mutex, which preserves the
//! invariant **pending non-empty ⇒ running > 0**: a job can never be queued
//! after the last slot-holder checked the queue, so every parked job is
//! picked up by some future release and none is stranded.

use std::collections::VecDeque;

use crate::sync::Mutex;

/// State behind the gate's mutex (rank 10 in the documented lock order).
struct GateState<T> {
    running: usize,
    pending: VecDeque<T>,
}

/// Bounds the number of concurrently running cold solves with a
/// requeue-based waiting queue.  Generic over the queued job type so model
/// tests can drive it with trivial payloads.
pub struct ColdGate<T> {
    /// 0 means the gate is disabled (unlimited cold solves, nothing queues).
    max_running: usize,
    max_pending: usize,
    state: Mutex<GateState<T>>,
}

/// Outcome of [`ColdGate::admit`].
pub enum Admission<T> {
    /// The caller holds a slot: run the job, then keep calling
    /// [`ColdGate::release_or_takeover`] until the pending queue is drained.
    Admitted(T),
    /// The job is parked in the pending queue; a slot-holder will run it.
    Queued,
    /// Slots and queue are both full: the caller sheds the job.
    Shed(T),
}

impl<T> ColdGate<T> {
    /// A gate admitting `max_running` concurrent jobs and queueing up to
    /// `max_pending` more; `max_running == 0` disables the gate entirely.
    pub fn new(max_running: usize, max_pending: usize) -> ColdGate<T> {
        ColdGate {
            max_running,
            max_pending,
            state: Mutex::new(GateState { running: 0, pending: VecDeque::new() }),
        }
    }

    /// Takes a solve slot, parks the job, or reports that it must be shed.
    pub fn admit(&self, job: T) -> Admission<T> {
        if self.max_running == 0 {
            return Admission::Admitted(job);
        }
        let mut state = self.state.lock();
        if state.running < self.max_running {
            state.running += 1;
            return Admission::Admitted(job);
        }
        if state.pending.len() < self.max_pending {
            state.pending.push_back(job);
            return Admission::Queued;
        }
        Admission::Shed(job)
    }

    /// Hands the caller the next pending job — the slot transfers to it — or
    /// releases the slot when the queue is empty.  Holding the slot across
    /// the hand-off (instead of release-then-reacquire) is what makes the
    /// stranding invariant airtight: a job can never be queued after the
    /// last slot-holder checked the queue.
    pub fn release_or_takeover(&self) -> Option<T> {
        if self.max_running == 0 {
            return None;
        }
        let mut state = self.state.lock();
        if let Some(job) = state.pending.pop_front() {
            return Some(job);
        }
        state.running -= 1;
        None
    }

    /// Point-in-time `(running, pending)` sizes — the observables the model
    /// checker asserts the stranding invariant over.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock();
        (state.running, state.pending.len())
    }
}
