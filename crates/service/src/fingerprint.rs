//! Canonical, relabeling-invariant fingerprints of throughput queries.
//!
//! Two queries that differ only by a renumbering of the platform's nodes
//! describe the same steady-state problem and have the same optimal
//! throughput, so they should map to a single cache key.  The fingerprint is
//! built from a Weisfeiler–Leman color refinement of the platform graph:
//!
//! 1. every node starts with a color derived from its compute speed and its
//!    *role* in the query (source, target, sink, participant with rank, ...);
//! 2. colors are refined for `|V|` rounds — a node's next color hashes its
//!    current color together with the **sorted multisets** of
//!    `(edge cost, neighbor color)` pairs over its outgoing and incoming
//!    edges;
//! 3. the fingerprint hashes the sorted multiset of final colors together
//!    with the collective kind and its scalar parameters.
//!
//! Every per-node quantity enters through a sorted multiset, so the result is
//! invariant under any permutation of node indices — isomorphic queries
//! *always* share a fingerprint.  The converse is deliberately approximate:
//! color refinement is the 1-WL test, which cannot separate certain highly
//! symmetric non-isomorphic graphs (the classic pair is `K_{3,3}` versus the
//! triangular prism).  To break exactly that class, each node's initial color
//! also includes its directed-triangle count (a bipartite platform has none,
//! a prism-like one does).  Distinct speeds, edge costs or roles reach every
//! refinement round, so collisions require platforms that are
//! simultaneously WL-equivalent, triangle-equivalent and parameter-identical
//! — or a 64-bit hash collision.  That residual risk is the cache-key
//! trade-off this module makes; callers needing certainty can re-verify a
//! cached answer against a cold solve.  Node *names* are deliberately
//! ignored: the fingerprint is structural.
//!
//! Hashing uses FNV-1a, hand-rolled so fingerprints are stable across
//! processes and runs (unlike `std`'s randomly keyed `DefaultHasher`).

use std::fmt;

use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;

use crate::query::{Collective, Query};

/// A 64-bit canonical fingerprint of a [`Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a hasher over 64-bit words and byte strings.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn word(&mut self, word: u64) {
        self.bytes(&word.to_le_bytes());
    }

    fn ratio(&mut self, r: &Ratio) {
        // Ratios are kept in lowest terms, so the textual numerator/denominator
        // pair is a canonical encoding of the value.
        self.bytes(r.numer().to_string().as_bytes());
        self.bytes(b"/");
        self.bytes(r.denom().to_string().as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Role bits mixed into a node's initial color.  A node may hold several
/// roles at once (e.g. a reduce target that also contributes a value).
mod role {
    pub const SOURCE: u64 = 1 << 0;
    pub const TARGET: u64 = 1 << 1;
    pub const SINK: u64 = 1 << 2;
    pub const PARTICIPANT: u64 = 1 << 3;
    /// Prefix participants are *ordered* (participant `i` receives the
    /// reduction of ranks `0..=i`), so their rank is part of the role.
    pub const RANK_BASE: u64 = 1 << 8;
}

/// Number of directed triangles through each node: ordered pairs `(u, w)`
/// with edges `v -> u`, `u -> w`, `w -> v`.  A permutation-invariant seed
/// that separates bipartite platforms from triangle-bearing ones — the
/// graph class plain 1-WL refinement is blind to.
fn directed_triangle_counts(platform: &Platform) -> Vec<u64> {
    platform
        .node_ids()
        .map(|v| {
            let mut count = 0u64;
            for &e1 in platform.out_edges(v) {
                let u = platform.edge(e1).to;
                for &e2 in platform.out_edges(u) {
                    let w = platform.edge(e2).to;
                    if w != v && platform.edge_between(w, v).is_some() {
                        count += 1;
                    }
                }
            }
            count
        })
        .collect()
}

/// Number of distinct values in `colors` (the size of the color partition).
fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Weisfeiler–Leman canonical hash of `platform` with per-node role labels.
///
/// With `include_costs` unset, every edge cost and exact node speed is
/// replaced by a constant (only the *can-compute* capability of each node
/// survives), yielding the cost-blind structural hash: platforms that differ
/// only in their numeric edge costs — the "cost drift" of a real deployment —
/// collapse into one structural class.
fn canonical_platform_hash(platform: &Platform, roles: &[u64], include_costs: bool) -> u64 {
    let n = platform.num_nodes();
    let triangles = directed_triangle_counts(platform);
    // Edge-cost hashes are loop-invariant; hashing a `Ratio` allocates
    // (BigInt-to-string), so pay for each edge once, not once per round.
    let edge_cost_hash: Vec<u64> = platform
        .edge_ids()
        .map(|e| {
            if !include_costs {
                return 0;
            }
            let mut h = Fnv::new();
            h.ratio(&platform.edge(e).cost);
            h.finish()
        })
        .collect();
    let mut colors: Vec<u64> = (0..n)
        .map(|i| {
            let mut h = Fnv::new();
            let node = platform.node(NodeId(i));
            if include_costs {
                h.ratio(&node.speed);
            } else {
                h.word(u64::from(node.can_compute()));
            }
            h.word(roles[i]);
            h.word(triangles[i]);
            h.finish()
        })
        .collect();

    // Refinement only ever splits color classes, so once the class count
    // stops growing the partition is stable and further rounds are no-ops.
    // The class count is an isomorphism invariant, so isomorphic platforms
    // exit after the same number of rounds with matching color multisets.
    let mut classes = distinct_count(&colors);
    for _round in 0..n {
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let node = NodeId(i);
            let neighbor_hash = |e: &steady_platform::EdgeId, color: u64| {
                let mut h = Fnv::new();
                h.word(edge_cost_hash[e.index()]);
                h.word(color);
                h.finish()
            };
            let mut out: Vec<u64> = platform
                .out_edges(node)
                .iter()
                .map(|e| neighbor_hash(e, colors[platform.edge(*e).to.index()]))
                .collect();
            let mut inc: Vec<u64> = platform
                .in_edges(node)
                .iter()
                .map(|e| neighbor_hash(e, colors[platform.edge(*e).from.index()]))
                .collect();
            out.sort_unstable();
            inc.sort_unstable();
            let mut h = Fnv::new();
            h.word(colors[i]);
            h.bytes(b"out");
            for w in out {
                h.word(w);
            }
            h.bytes(b"in");
            for w in inc {
                h.word(w);
            }
            next.push(h.finish());
        }
        colors = next;
        let refined = distinct_count(&colors);
        if refined == classes {
            break;
        }
        classes = refined;
    }

    colors.sort_unstable();
    let mut h = Fnv::new();
    h.word(n as u64);
    h.word(platform.num_edges() as u64);
    for c in colors {
        h.word(c);
    }
    h.finish()
}

/// Computes the canonical fingerprint of `query`.
///
/// The query's node ids must be valid for its platform (see
/// [`Query::validate`]); out-of-range ids panic.
pub fn fingerprint(query: &Query) -> Fingerprint {
    fingerprint_with(query, true)
}

/// Computes the **structural** fingerprint of `query`: topology, roles and
/// collective kind only — every numeric cost (edge costs, exact node speeds,
/// the reduce/prefix `size` and `task_cost` scalars) is blinded.
///
/// Queries sharing a structural fingerprint formulate LPs with the same
/// variables and constraints, differing only in coefficients, so the solved
/// basis of one is a valid warm-start seed for the others (the engine keys
/// its basis cache on this value).  Unlike the exact fingerprint it is *not*
/// a cache key for answers: two queries in one structural class generally
/// have different optimal throughputs.
pub fn structural_fingerprint(query: &Query) -> Fingerprint {
    fingerprint_with(query, false)
}

fn fingerprint_with(query: &Query, include_costs: bool) -> Fingerprint {
    let n = query.platform.num_nodes();
    let mut roles = vec![0u64; n];
    let mut h = Fnv::new();
    if !include_costs {
        // Domain-separate the two keyspaces: a structural fingerprint must
        // never collide with an exact one even for cost-free queries.
        h.bytes(b"structural:");
    }
    match &query.collective {
        Collective::Scatter { source, targets } => {
            h.bytes(b"scatter");
            roles[source.index()] |= role::SOURCE;
            for t in targets {
                roles[t.index()] |= role::TARGET;
            }
        }
        Collective::Gather { sources, sink } => {
            h.bytes(b"gather");
            for s in sources {
                roles[s.index()] |= role::SOURCE;
            }
            roles[sink.index()] |= role::SINK;
        }
        Collective::Gossip { sources, targets } => {
            h.bytes(b"gossip");
            for s in sources {
                roles[s.index()] |= role::SOURCE;
            }
            for t in targets {
                roles[t.index()] |= role::TARGET;
            }
        }
        Collective::Reduce { participants, target, size, task_cost } => {
            h.bytes(b"reduce");
            for p in participants {
                roles[p.index()] |= role::PARTICIPANT;
            }
            roles[target.index()] |= role::SINK;
            if include_costs {
                h.ratio(size);
                h.ratio(task_cost);
            }
        }
        Collective::Prefix { participants, size, task_cost } => {
            h.bytes(b"prefix");
            for (rank, p) in participants.iter().enumerate() {
                roles[p.index()] |= role::PARTICIPANT | (role::RANK_BASE * (rank as u64 + 1));
            }
            if include_costs {
                h.ratio(size);
                h.ratio(task_cost);
            }
        }
    }
    h.word(canonical_platform_hash(&query.platform, &roles, include_costs));
    Fingerprint(h.finish())
}

/// Returns a copy of `platform` with node `i` renumbered to `perm[i]`
/// (`perm` must be a permutation of `0..num_nodes`); edges follow their
/// endpoints, costs and speeds are unchanged.
///
/// This is the relabeling the fingerprint is invariant under; it is exposed
/// for tests, examples and benchmarks.
pub fn permuted_platform(platform: &Platform, perm: &[usize]) -> Platform {
    assert_eq!(perm.len(), platform.num_nodes(), "perm must cover every node");
    let mut inverse = vec![usize::MAX; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        assert!(new < perm.len() && inverse[new] == usize::MAX, "perm must be a permutation");
        inverse[new] = old;
    }
    let mut out = Platform::new();
    for &old in &inverse {
        let node = platform.node(NodeId(old));
        out.add_node(node.name.clone(), node.speed.clone());
    }
    for e in platform.edge_ids() {
        let edge = platform.edge(e);
        out.add_edge(
            NodeId(perm[edge.from.index()]),
            NodeId(perm[edge.to.index()]),
            edge.cost.clone(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::figure2;
    use steady_rational::rat;

    fn scatter_query() -> Query {
        let instance = figure2();
        Query {
            platform: instance.platform,
            collective: Collective::Scatter { source: instance.source, targets: instance.targets },
        }
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let q = scatter_query();
        assert_eq!(fingerprint(&q), fingerprint(&q));
    }

    #[test]
    fn permutation_preserves_fingerprint() {
        let q = scatter_query();
        // Rotate all five node indices.
        let perm = [1, 2, 3, 4, 0];
        let platform = permuted_platform(&q.platform, &perm);
        let Collective::Scatter { source, targets } = &q.collective else { unreachable!() };
        let permuted = Query {
            platform,
            collective: Collective::Scatter {
                source: NodeId(perm[source.index()]),
                targets: targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
            },
        };
        assert_eq!(fingerprint(&q), fingerprint(&permuted));
    }

    #[test]
    fn role_changes_change_fingerprint() {
        let q = scatter_query();
        let Collective::Scatter { source, targets } = &q.collective else { unreachable!() };
        // Dropping one target is a different query.
        let fewer = Query {
            platform: q.platform.clone(),
            collective: Collective::Scatter { source: *source, targets: targets[..1].to_vec() },
        };
        assert_ne!(fingerprint(&q), fingerprint(&fewer));
    }

    #[test]
    fn target_order_is_irrelevant_but_prefix_rank_order_is_not() {
        let q = scatter_query();
        let Collective::Scatter { source, targets } = &q.collective else { unreachable!() };
        let mut reversed_targets = targets.clone();
        reversed_targets.reverse();
        let reversed = Query {
            platform: q.platform.clone(),
            collective: Collective::Scatter { source: *source, targets: reversed_targets },
        };
        assert_eq!(fingerprint(&q), fingerprint(&reversed));

        let participants = vec![NodeId(0), NodeId(1), NodeId(2)];
        let mut swapped = participants.clone();
        swapped.swap(0, 2);
        let prefix = |participants: Vec<NodeId>| Query {
            platform: q.platform.clone(),
            collective: Collective::Prefix { participants, size: rat(1, 1), task_cost: rat(1, 1) },
        };
        assert_ne!(fingerprint(&prefix(participants)), fingerprint(&prefix(swapped)));
    }

    #[test]
    fn scalar_parameters_reach_the_fingerprint() {
        let platform = figure2().platform;
        let reduce = |size: Ratio| Query {
            platform: platform.clone(),
            collective: Collective::Reduce {
                participants: vec![NodeId(0), NodeId(3)],
                target: NodeId(0),
                size,
                task_cost: rat(1, 1),
            },
        };
        assert_ne!(fingerprint(&reduce(rat(1, 1))), fingerprint(&reduce(rat(2, 1))));
    }

    #[test]
    fn wl_blind_spot_k33_vs_prism_is_separated() {
        // K_{3,3} and the triangular prism are the classic non-isomorphic
        // 3-regular pair that plain 1-WL refinement cannot distinguish; with
        // uniform speeds/costs and fully symmetric roles the refinement
        // colors coincide, so separation must come from the triangle counts.
        let uniform = |edges: &[(usize, usize)]| {
            let mut p = Platform::new();
            let nodes: Vec<_> = (0..6).map(|i| p.add_node(format!("n{i}"), rat(1, 1))).collect();
            for &(a, b) in edges {
                p.add_link(nodes[a], nodes[b], rat(1, 1));
            }
            p
        };
        let k33 =
            uniform(&[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]);
        let prism =
            uniform(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)]);
        let all: Vec<NodeId> = (0..6).map(NodeId).collect();
        let symmetric = |platform: Platform| Query {
            platform,
            collective: Collective::Gossip { sources: all.clone(), targets: all.clone() },
        };
        assert_ne!(fingerprint(&symmetric(k33)), fingerprint(&symmetric(prism)));
    }

    #[test]
    fn structural_fingerprint_is_cost_blind_but_shape_sensitive() {
        let base = scatter_query();
        // Scale every edge cost: the exact fingerprint changes, the structural
        // one does not — the two queries are one warm-start class.
        let mut drifted_platform = Platform::new();
        for id in base.platform.node_ids() {
            let node = base.platform.node(id);
            drifted_platform.add_node(node.name.clone(), node.speed.clone());
        }
        for id in base.platform.edge_ids() {
            let e = base.platform.edge(id);
            drifted_platform.add_edge(e.from, e.to, &e.cost * &rat(3, 7));
        }
        let drifted = Query { platform: drifted_platform, collective: base.collective.clone() };
        assert_ne!(fingerprint(&base), fingerprint(&drifted));
        assert_eq!(structural_fingerprint(&base), structural_fingerprint(&drifted));
        // The structural and exact keyspaces are domain-separated.
        assert_ne!(structural_fingerprint(&base), fingerprint(&base));

        // Dropping a target changes the roles, hence the structural class.
        let Collective::Scatter { source, targets } = &base.collective else { unreachable!() };
        let fewer = Query {
            platform: base.platform.clone(),
            collective: Collective::Scatter { source: *source, targets: targets[..1].to_vec() },
        };
        assert_ne!(structural_fingerprint(&base), structural_fingerprint(&fewer));
    }

    #[test]
    fn structural_fingerprint_blinds_reduce_scalars_and_survives_permutation() {
        let platform = figure2().platform;
        let reduce = |size: Ratio| Query {
            platform: platform.clone(),
            collective: Collective::Reduce {
                participants: vec![NodeId(0), NodeId(3)],
                target: NodeId(0),
                size,
                task_cost: rat(1, 1),
            },
        };
        assert_eq!(
            structural_fingerprint(&reduce(rat(1, 1))),
            structural_fingerprint(&reduce(rat(5, 1)))
        );

        let q = scatter_query();
        let perm = [2, 0, 4, 1, 3];
        let Collective::Scatter { source, targets } = &q.collective else { unreachable!() };
        let permuted = Query {
            platform: permuted_platform(&q.platform, &perm),
            collective: Collective::Scatter {
                source: NodeId(perm[source.index()]),
                targets: targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
            },
        };
        assert_eq!(structural_fingerprint(&q), structural_fingerprint(&permuted));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permuted_platform_rejects_non_permutations() {
        let platform = figure2().platform;
        let _ = permuted_platform(&platform, &[0, 0, 1, 2, 3]);
    }
}
