//! Metrics registry: named counters, gauges and log-linear latency
//! histograms with mergeable buckets, rendered as hand-rolled JSON or
//! Prometheus text exposition.
//!
//! The histogram is the HDR-style log-linear design: values are bucketed by
//! their power of two (the "group") subdivided into `2^SUB_BITS` linear
//! sub-buckets, so the relative quantile error is bounded by
//! `2^-SUB_BITS` (= 1/64 ≈ 1.6%) everywhere, and values below `2^SUB_BITS`
//! are **exact** (one bucket per integer).  Recording is one atomic
//! increment — no allocation, no locking — so the serving hot path can feed
//! per-stage histograms unconditionally; snapshots subtract and merge
//! bucket-wise, which is what lets the load generator take a before/after
//! delta of a shared service and still report exact-run percentiles.
//!
//! Everything here is dependency-free and goes through
//! [`crate::sync`], so the same code is model-checkable under
//! `--cfg steady_loom` (the registry itself holds no locks on the record
//! path — only atomics).

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// Linear sub-bucket bits per power-of-two group: 64 sub-buckets, so the
/// worst-case relative error of any reported quantile is 2⁻⁶ ≈ 1.6%.
const SUB_BITS: u32 = 6;

/// Sub-buckets per group.
const SUBS: usize = 1 << SUB_BITS;

/// Total buckets: one exact group for values `< 2^SUB_BITS` plus one group
/// per remaining power of two of the `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Bucket index of `value` (total order preserved: `v1 <= v2` implies
/// `index(v1) <= index(v2)`).
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        group * SUBS + sub
    }
}

/// Lowest value mapping to bucket `index`.
fn bucket_low(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let group = (index / SUBS) as u32;
        let sub = (index % SUBS) as u64;
        let msb = group + SUB_BITS - 1;
        (1u64 << msb) + (sub << (msb - SUB_BITS))
    }
}

/// Width of bucket `index` (1 for the exact group).
fn bucket_width(index: usize) -> u64 {
    if index < SUBS {
        1
    } else {
        let group = (index / SUBS) as u32;
        1u64 << (group - 1)
    }
}

/// Representative value reported for bucket `index`: its midpoint, which
/// halves the worst-case error and is **exact** for width-1 buckets.
fn bucket_mid(index: usize) -> u64 {
    bucket_low(index) + (bucket_width(index) - 1) / 2
}

/// A concurrent log-linear histogram of `u64` samples (typically
/// nanoseconds).  Recording is wait-free (one relaxed atomic add); reading
/// is by [`Histogram::snapshot`].
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // relaxed: independent monotone tallies read only by snapshots; a
        // snapshot racing a record may see the bucket without the sum (or
        // vice versa), which quantile math tolerates by construction.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // relaxed: see `record` — snapshot reads tolerate skew.
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        write!(f, "Histogram {{ count: {}, sum: {} }}", snap.count, snap.sum)
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0 }
    }

    /// Records one sample into this owned snapshot (single-threaded use,
    /// e.g. a load-generator client accumulating its own latencies).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other`'s samples into this snapshot bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket-wise difference from an `earlier` snapshot of the same
    /// histogram — the samples recorded in between.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket
    /// holding the rank-`⌈q·count⌉` sample: within one bucket width of the
    /// exact order statistic, i.e. a relative error of at most 2⁻⁶ ≈ 1.6%
    /// (exact below 64).  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(index);
            }
        }
        self.max()
    }

    /// Largest recorded sample, to bucket resolution (0 when empty).
    pub fn max(&self) -> u64 {
        match self.buckets.iter().rposition(|&n| n > 0) {
            Some(index) => bucket_mid(index),
            None => 0,
        }
    }

    /// Smallest recorded sample, to bucket resolution (0 when empty).
    pub fn min(&self) -> u64 {
        match self.buckets.iter().position(|&n| n > 0) {
            Some(index) => bucket_mid(index),
            None => 0,
        }
    }

    /// `(inclusive upper bound, cumulative count)` per non-empty bucket, the
    /// shape Prometheus histogram exposition wants.
    fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push((bucket_low(index) + bucket_width(index) - 1, cum));
        }
        out
    }
}

/// A named monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // relaxed: independent monotone tally read only by snapshots.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: point-in-time snapshot read.
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge (a value that goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        // relaxed: last-writer-wins status value read only by snapshots.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // relaxed: point-in-time snapshot read.
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics, snapshotted as one [`MetricsSnapshot`].
///
/// Registration (startup) and snapshotting take the registry's own lock;
/// recording through the returned handles never does.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or returns the existing) counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock();
        for (n, metric) in entries.iter() {
            if n == name {
                if let Metric::Counter(c) = metric {
                    return Arc::clone(c);
                }
            }
        }
        let counter = Arc::new(Counter::default());
        entries.push((name.to_string(), Metric::Counter(Arc::clone(&counter))));
        counter
    }

    /// Registers (or returns the existing) gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock();
        for (n, metric) in entries.iter() {
            if n == name {
                if let Metric::Gauge(g) = metric {
                    return Arc::clone(g);
                }
            }
        }
        let gauge = Arc::new(Gauge::default());
        entries.push((name.to_string(), Metric::Gauge(Arc::clone(&gauge))));
        gauge
    }

    /// Registers (or returns the existing) histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock();
        for (n, metric) in entries.iter() {
            if n == name {
                if let Metric::Histogram(h) = metric {
                    return Arc::clone(h);
                }
            }
        }
        let histogram = Arc::new(Histogram::new());
        entries.push((name.to_string(), Metric::Histogram(Arc::clone(&histogram))));
        histogram
    }

    /// A point-in-time snapshot of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Schema version stamped into every JSON document this crate emits, so
/// future field additions cannot silently break a stored-baseline
/// comparison.  Version 2 added the per-solver histograms
/// (`solver_pivots`, `solver_degenerate_pivots`, `solver_bland_pivots`,
/// `solver_peak_eta`, `solver_refactorizations`) and the solver-event
/// overhead fields of `steady obs-overhead`.
pub const METRICS_SCHEMA_VERSION: u64 = 2;

/// An owned snapshot of a [`MetricsRegistry`] (plus any caller-appended
/// values), renderable as JSON or Prometheus text exposition.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Appends a counter value (used to fold pre-existing engine counters
    /// into one exposition without double-tracking them in the registry).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Appends a gauge value.
    pub fn push_gauge(&mut self, name: &str, value: u64) {
        self.gauges.push((name.to_string(), value));
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Metric-wise difference from an `earlier` snapshot: counters and
    /// histograms subtract (the activity in between), gauges keep this
    /// snapshot's value.  Metrics absent from `earlier` pass through.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counter_then =
            |name: &str| earlier.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v);
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(counter_then(n))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    let delta = match earlier.histogram(n) {
                        Some(then) => h.since(then),
                        None => h.clone(),
                    };
                    (n.clone(), delta)
                })
                .collect(),
        }
    }

    /// Hand-rolled JSON exposition: counters and gauges verbatim, histograms
    /// summarized as `count/sum/mean/min/max` plus p50/p90/p99 (quantiles
    /// carry the bucket error bound documented on
    /// [`HistogramSnapshot::quantile`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {METRICS_SCHEMA_VERSION},\n"));
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                h.count(),
                h.sum(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition (version 0.0.4): counters as `_total`,
    /// gauges verbatim, histograms as sparse cumulative `_bucket{le=...}`
    /// series plus `_sum`/`_count`.  Every family is prefixed `steady_`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE steady_{name}_total counter\n"));
            out.push_str(&format!("steady_{name}_total {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE steady_{name} gauge\n"));
            out.push_str(&format!("steady_{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE steady_{name} histogram\n"));
            for (le, cum) in h.cumulative() {
                out.push_str(&format!("steady_{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("steady_{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("steady_{name}_sum {}\n", h.sum()));
            out.push_str(&format!("steady_{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut probes: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|wiggle| (1u64 << shift).saturating_add(wiggle)))
            .collect();
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            assert!(bucket_low(idx) <= v, "low({idx}) > {v}");
            assert!(v - bucket_low(idx) < bucket_width(idx), "{v} beyond bucket {idx}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUBS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUBS as u64 {
            // Quantile rank of the v-th smallest of 64 distinct values.
            let q = (v as f64 + 1.0) / SUBS as f64;
            assert_eq!(snap.quantile(q), v, "value {v} not exact");
        }
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), SUBS as u64 - 1);
    }

    /// The tentpole guarantee: on adversarial distributions every reported
    /// quantile is within ONE bucket width of the exact order statistic.
    #[test]
    fn quantile_error_is_within_one_bucket_width_on_adversarial_inputs() {
        let adversarial: Vec<Vec<u64>> = vec![
            // All mass on one point, at a bucket boundary.
            vec![1 << 20; 1000],
            // Bimodal with extreme separation.
            (0..500).map(|_| 3u64).chain((0..500).map(|_| u64::MAX / 2)).collect(),
            // Geometric sweep hitting every group.
            (0..60).map(|s| 1u64 << s).collect(),
            // Dense cluster just above a power of two (worst relative spot).
            (0..1000).map(|i| (1 << 30) + i).collect(),
            // Heavy tail: many tiny, few huge.
            (0..990).map(|i| i % 50).chain((0..10).map(|_| 1u64 << 40)).collect(),
        ];
        for (case, values) in adversarial.iter().enumerate() {
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            let snap = h.snapshot();
            for &q in &[0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let estimate = snap.quantile(q);
                let width = bucket_width(bucket_index(exact));
                assert!(
                    estimate.abs_diff(exact) <= width,
                    "case {case}: q{q} estimate {estimate} vs exact {exact} \
                     (bucket width {width})"
                );
            }
        }
    }

    #[test]
    fn merge_and_since_are_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        for v in [2u64, 200, 20_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), 1 + 100 + 10_000 + 2 + 200 + 20_000);

        let before = a.snapshot();
        a.record(777);
        let delta = a.snapshot().since(&before);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum(), 777);
        assert!(delta.quantile(0.5).abs_diff(777) <= bucket_width(bucket_index(777)));
    }

    #[test]
    fn registry_snapshot_and_renders() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("queries");
        c.add(41);
        c.inc();
        let g = registry.gauge("cached_entries");
        g.set(7);
        let h = registry.histogram("stage_solve_warm_nanos");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        // Re-registration returns the same handle.
        registry.counter("queries").inc();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("queries"), Some(43));
        assert_eq!(snap.gauges, vec![("cached_entries".to_string(), 7)]);
        assert_eq!(snap.histogram("stage_solve_warm_nanos").unwrap().count(), 3);

        let json = snap.to_json();
        assert!(json.contains("\"schema_version\": 2"), "{json}");
        assert!(json.contains("\"queries\": 43"), "{json}");
        assert!(json.contains("\"stage_solve_warm_nanos\""), "{json}");

        let prom = snap.to_prometheus();
        assert!(prom.contains("steady_queries_total 43"), "{prom}");
        assert!(prom.contains("steady_cached_entries 7"), "{prom}");
        assert!(prom.contains("steady_stage_solve_warm_nanos_count 3"), "{prom}");
        assert!(prom.contains("_bucket{le=\"+Inf\"} 3"), "{prom}");
        // Cumulative buckets are non-decreasing.
        let mut last = 0u64;
        for line in prom.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative buckets must not decrease: {prom}");
            last = v;
        }
    }

    #[test]
    fn snapshot_since_subtracts_counters_and_histograms() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("queries");
        let h = registry.histogram("e2e_hit_nanos");
        c.add(5);
        h.record(100);
        let before = registry.snapshot();
        c.add(2);
        h.record(300);
        let delta = registry.snapshot().since(&before);
        assert_eq!(delta.counter("queries"), Some(2));
        assert_eq!(delta.histogram("e2e_hit_nanos").unwrap().count(), 1);
    }
}
