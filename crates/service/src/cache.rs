//! Sharded in-memory solution cache with LRU eviction and epoch-based
//! staleness.
//!
//! The cache maps canonical fingerprints to [`Answer`]s.  Keys are spread
//! over independently locked shards so concurrent lookups from the worker
//! pool do not contend on a single lock; within a shard, reads take the
//! shared side of a [`RwLock`] and recency is tracked with a per-entry
//! atomic timestamp so hits never need the exclusive side.
//! Eviction is least-recently-used per shard, with a **drift-aware
//! preference**: entries whose structural class has no surviving simplex
//! basis seed are evicted first.  Losing such an entry costs a full cold
//! solve to re-derive, but so does *keeping* it once costs drift (no basis
//! means no cheap revalidation) — whereas an entry whose class is seeded
//! can always be re-derived by a near-free `InRange`/`DualRepair` triage.
//! The seeded-class set is maintained by the engine
//! ([`SolutionCache::mark_class_seeded`]).
//!
//! Every entry remembers the **epoch** it was inserted in (see
//! `Service::advance_epoch`).  A TTL-aware lookup classifies entries older
//! than the TTL as [`Lookup::Stale`] instead of dropping them: the stale
//! answer is still returned, because the engine's drift triage can usually
//! *revalidate* it against the cached simplex basis far more cheaply than
//! re-deriving it — and it remains the best available fallback when a
//! revalidation is shed under overload.
//!
//! The cache is generic over its value type (defaulting to the engine's
//! `Arc<Answer>`) so the model-check suite can drive the same sharding,
//! TTL and eviction code with trivial payloads; all synchronization goes
//! through [`crate::sync`], which resolves to the modeled primitives under
//! `--cfg steady_loom`.  Lock order within the cache: a `shard` lock (rank
//! 30) may take the `seeded` set (rank 40), never the reverse — see
//! [`crate::sync`] for the full table.

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::RwLock;

use crate::query::Answer;

/// Sizing of a [`SolutionCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Upper bound on the number of cached answers across all shards — never
    /// exceeded.  The bound is enforced as a per-shard quota of
    /// `capacity / shards` (shard count is reduced when `capacity` is
    /// smaller than the shard count), so a shard may evict while another
    /// still has room; with keys that are already hashes the spread is even
    /// and the effective capacity stays close to the bound.
    pub capacity: usize,
    /// Number of shards (rounded up to a power of two, at least 1, at most
    /// `capacity`).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 1024, shards: 16 }
    }
}

/// Monotonic counters describing the cache's behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing — or only a stale entry (stale lookups
    /// count as misses, so `hits + misses` equals total lookups).
    pub misses: u64,
    /// The subset of `misses` that found a stale entry (TTL expired).
    pub stale: u64,
    /// Answers stored.
    pub insertions: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// The subset of `evictions` where the drift-aware preference overrode
    /// plain LRU: a less-recently-used entry of a *seeded* structural class
    /// was spared in favour of an unseeded one (cheapest to lose).
    pub preferred_evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: AtomicU64,
    /// Service epoch the entry was inserted (or last revalidated) in.
    epoch: u64,
    /// Structural class of the entry's platform (cost-blind fingerprint),
    /// when known — drives the drift-aware eviction preference.  `None`
    /// (e.g. snapshot-restored entries) is treated as unseeded.
    class: Option<u64>,
}

/// Outcome of a TTL-aware cache lookup (see [`SolutionCache::lookup`]).
#[derive(Debug, Clone)]
pub enum Lookup<V = Arc<Answer>> {
    /// A fresh entry: serve it directly.
    Hit(V),
    /// An entry older than the TTL: its exact value may no longer reflect
    /// the platform — revalidate before serving, but keep it as the
    /// best-effort fallback.
    Stale(V),
    /// Nothing cached under the key.
    Miss,
}

/// A sharded fingerprint → value cache with per-shard LRU eviction, epoch
/// stamps and drift-aware victim preference.  `V` defaults to the engine's
/// shared [`Answer`]; model tests instantiate it with plain integers.
pub struct SolutionCache<V = Arc<Answer>> {
    shards: Vec<RwLock<HashMap<u64, Entry<V>>>>,
    shard_mask: u64,
    per_shard_capacity: usize,
    /// Structural classes with a surviving basis seed (see
    /// [`SolutionCache::mark_class_seeded`]); entries outside it are
    /// preferred eviction victims.
    seeded: RwLock<std::collections::HashSet<u64>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    preferred_evictions: AtomicU64,
}

/// `true` when an entry inserted at `epoch` is still fresh at `now` under
/// `ttl` (`None` = entries never expire; `Some(t)` = fresh for `t` epochs
/// beyond the insertion one, so `Some(0)` expires entries as soon as the
/// epoch advances).
fn fresh(epoch: u64, now: u64, ttl: Option<u64>) -> bool {
    ttl.is_none_or(|t| now.saturating_sub(epoch) <= t)
}

impl<V: Clone> SolutionCache<V> {
    /// Creates an empty cache.
    pub fn new(config: &CacheConfig) -> Self {
        let capacity = config.capacity.max(1);
        let mut shards = config.shards.max(1).next_power_of_two();
        while shards > capacity {
            shards /= 2;
        }
        // shards <= capacity, so the floor quota is >= 1 and
        // shards * per_shard_capacity <= capacity.
        let per_shard_capacity = capacity / shards;
        SolutionCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_mask: shards as u64 - 1,
            per_shard_capacity,
            seeded: RwLock::new(std::collections::HashSet::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            preferred_evictions: AtomicU64::new(0),
        }
    }

    /// Records that structural class `class` has a surviving basis seed:
    /// entries of seeded classes are cheap to re-derive (their next solve
    /// triages `InRange`/`DualRepair`), so eviction spares them in favour of
    /// unseeded entries.  Idempotent; classes are never un-marked — a basis
    /// seed, once cached, is only ever replaced by a newer one.
    pub fn mark_class_seeded(&self, class: u64) {
        self.seeded.write().insert(class);
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Entry<V>>> {
        // The fingerprint is already a hash; fold the high bits in so shard
        // choice is not just the low bits the HashMap also keys on.
        let idx = ((key >> 32) ^ key) & self.shard_mask;
        &self.shards[idx as usize]
    }

    fn tick(&self) -> u64 {
        // relaxed: the recency clock only needs to be monotonic-ish per
        // entry; LRU victim choice tolerates approximate ordering, and no
        // other state is published through this counter.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key` ignoring entry age, updating recency and the hit/miss
    /// counters.  Shorthand for [`SolutionCache::lookup`] with no TTL.
    pub fn get(&self, key: u64) -> Option<V> {
        match self.lookup(key, 0, None) {
            Lookup::Hit(value) => Some(value),
            Lookup::Stale(_) | Lookup::Miss => None,
        }
    }

    /// Looks up `key` at epoch `now` under `ttl`, updating recency and the
    /// counters: a fresh entry is a hit, a stale one counts as a miss (plus
    /// the `stale` marker) but still hands back the old answer for
    /// revalidation, and an absent one is a plain miss.
    pub fn lookup(&self, key: u64, now: u64, ttl: Option<u64>) -> Lookup<V> {
        let shard = self.shard(key).read();
        match shard.get(&key) {
            Some(entry) => {
                // relaxed: recency stamp — approximate LRU is acceptable and
                // the shard read lock already orders this store against the
                // eviction scan's exclusive access.
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                if fresh(entry.epoch, now, ttl) {
                    // relaxed: independent monotonic stat counter; readers
                    // snapshot via `stats()` and tolerate cross-counter skew.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Lookup::Hit(entry.value.clone())
                } else {
                    // relaxed: independent monotonic stat counters (as above).
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // relaxed: same stat-counter justification.
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    Lookup::Stale(entry.value.clone())
                }
            }
            None => {
                // relaxed: independent monotonic stat counter (as above).
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Looks up `key` without touching the hit/miss counters (recency is
    /// still updated).  Shorthand for [`SolutionCache::peek_fresh`] with no
    /// TTL.
    pub fn peek(&self, key: u64) -> Option<V> {
        self.peek_fresh(key, 0, None)
    }

    /// Returns the entry under `key` only if it is *fresh* at epoch `now`
    /// under `ttl`, without touching the hit/miss counters (recency is still
    /// updated).
    ///
    /// The engine uses this to re-check the cache while holding the
    /// single-flight admission lock: the initial lookup already recorded a
    /// hit or miss for the query, so this second look must not count again —
    /// `hits + misses` stays equal to the number of lookups.  A stale entry
    /// is reported as absent so the caller proceeds to revalidation.
    pub fn peek_fresh(&self, key: u64, now: u64, ttl: Option<u64>) -> Option<V> {
        let shard = self.shard(key).read();
        let entry = shard.get(&key)?;
        // relaxed: recency stamp — see `lookup`.
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        if fresh(entry.epoch, now, ttl) {
            Some(entry.value.clone())
        } else {
            None
        }
    }

    /// Stores `value` under `key` at epoch 0 with no structural class (see
    /// [`SolutionCache::insert_at`]).
    pub fn insert(&self, key: u64, value: V) {
        self.insert_at(key, value, 0, None);
    }

    /// Stores `value` under `key` stamped with `epoch` and the entry's
    /// structural `class`, evicting a victim if the shard is full.
    /// Re-inserting an existing key refreshes the answer, its epoch and its
    /// class — this is how a revalidated entry becomes fresh again.
    ///
    /// Victim choice is LRU with a drift-aware preference: entries whose
    /// class has no surviving basis seed (including `class: None` entries)
    /// are evicted first, LRU among themselves; only when every entry in
    /// the shard is seeded does plain LRU decide.  Losing an unseeded entry
    /// costs one cold solve either way, while a seeded entry's class keeps
    /// revalidating nearly for free.
    pub fn insert_at(&self, key: u64, value: V, epoch: u64, class: Option<u64>) {
        let mut shard = self.shard(key).write();
        if !shard.contains_key(&key) && shard.len() >= self.per_shard_capacity {
            let seeded = self.seeded.read();
            let lru = |entries: &HashMap<u64, Entry<V>>, unseeded_only: bool| {
                entries
                    .iter()
                    .filter(|(_, e)| {
                        !unseeded_only || !e.class.is_some_and(|c| seeded.contains(&c))
                    })
                    // relaxed: the eviction scan holds the shard write lock,
                    // so no reader is concurrently stamping these entries;
                    // approximate recency would be acceptable regardless.
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(&k, _)| k)
            };
            let global = lru(&shard, false);
            let victim = match lru(&shard, true) {
                Some(preferred) => {
                    if Some(preferred) != global {
                        // relaxed: independent monotonic stat counter.
                        self.preferred_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(preferred)
                }
                None => global,
            };
            if let Some(victim) = victim {
                shard.remove(&victim);
                // relaxed: independent monotonic stat counter.
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let entry = Entry { value, last_used: AtomicU64::new(self.tick()), epoch, class };
        if shard.insert(key, entry).is_none() {
            // relaxed: independent monotonic stat counter.
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every cached `(key, value)` pair, in
    /// unspecified order (used by snapshot persistence; shards are read one
    /// at a time, so concurrent inserts may or may not be included).
    pub fn entries(&self) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(shard.iter().map(|(&k, entry)| (k, entry.value.clone())));
        }
        out
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/stale/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        // relaxed: counter snapshot — values are individually exact
        // (monotonic fetch_adds) and cross-counter skew is inherent to any
        // unlocked snapshot.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            preferred_evictions: self.preferred_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use steady_rational::rat;

    fn answer(key: u64) -> Arc<Answer> {
        Arc::new(Answer {
            fingerprint: Fingerprint(key),
            platform: steady_platform::Platform::new(),
            throughput: rat(key as i64, 1),
            schedule: None,
        })
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = SolutionCache::new(&CacheConfig { capacity: 8, shards: 2 });
        assert!(cache.get(1).is_none());
        cache.insert(1, answer(1));
        let got = cache.get(1).expect("present");
        assert_eq!(got.throughput, rat(1, 1));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One shard of capacity 2 so eviction order is fully observable.
        let cache = SolutionCache::new(&CacheConfig { capacity: 2, shards: 1 });
        cache.insert(1, answer(1));
        cache.insert(2, answer(2));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, answer(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "the stale entry was evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn drift_aware_eviction_prefers_unseeded_classes() {
        // One shard of capacity 2.  Key 1 belongs to a *seeded* structural
        // class (a basis seed survives, so it revalidates for free); key 2
        // belongs to an unseeded class.  Even after key 2 is touched (making
        // key 1 the LRU victim), eviction must prefer key 2 — losing it
        // costs one cold solve either way, losing key 1 throws away a free
        // revalidation.
        let cache = SolutionCache::new(&CacheConfig { capacity: 2, shards: 1 });
        cache.mark_class_seeded(77);
        cache.insert_at(1, answer(1), 0, Some(77));
        cache.insert_at(2, answer(2), 0, Some(88));
        assert!(cache.get(2).is_some(), "key 2 is now the most recently used");

        cache.insert_at(3, answer(3), 0, Some(77));
        assert!(cache.get(1).is_some(), "the seeded entry was spared");
        assert!(cache.get(2).is_none(), "the unseeded entry was preferred");
        assert!(cache.get(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.preferred_evictions, 1, "preference overrode LRU");

        // With only seeded entries left, plain LRU decides and the
        // preference counter stays put.
        assert!(cache.get(3).is_some(), "key 1 becomes the LRU victim");
        cache.insert_at(4, answer(4), 0, Some(77));
        assert!(cache.get(1).is_none(), "plain LRU evicted the oldest seeded entry");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.preferred_evictions, 1);

        // Entries with an unknown class (snapshot restores) count as
        // unseeded and go first.
        cache.insert_at(5, answer(5), 0, None);
        assert!(cache.get(5).is_some());
        cache.insert_at(6, answer(6), 0, Some(77));
        assert!(cache.get(5).is_none(), "class-less entries are preferred victims");
        assert_eq!(cache.stats().preferred_evictions, 2);
    }

    #[test]
    fn reinsert_overwrites_without_eviction() {
        let cache = SolutionCache::new(&CacheConfig { capacity: 1, shards: 1 });
        cache.insert(7, answer(7));
        cache.insert(7, answer(8));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(7).unwrap().throughput, rat(8, 1));
    }

    #[test]
    fn total_capacity_is_never_exceeded() {
        // More shards than capacity: the shard count must shrink so the
        // global bound holds instead of each shard granting a free slot.
        let cache = SolutionCache::new(&CacheConfig { capacity: 5, shards: 16 });
        for key in 0..100u64 {
            cache.insert(key, answer(key));
            assert!(cache.len() <= 5, "len {} exceeds capacity", cache.len());
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn ttl_classifies_entries_without_dropping_them() {
        let cache = SolutionCache::new(&CacheConfig::default());
        cache.insert_at(9, answer(9), 3, None);

        // Fresh within the TTL window, stale beyond it, never dropped.
        assert!(matches!(cache.lookup(9, 3, Some(0)), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(9, 4, Some(1)), Lookup::Hit(_)));
        match cache.lookup(9, 5, Some(1)) {
            Lookup::Stale(old) => assert_eq!(old.throughput, rat(9, 1)),
            other => panic!("expected a stale entry, got {other:?}"),
        }
        // No TTL: never stale.
        assert!(matches!(cache.lookup(9, 1000, None), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(8, 0, Some(1)), Lookup::Miss));

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stale), (3, 2, 1));

        // Re-inserting refreshes the epoch: the entry is fresh again.
        cache.insert_at(9, answer(9), 5, None);
        assert!(matches!(cache.lookup(9, 5, Some(0)), Lookup::Hit(_)));
        assert_eq!(cache.stats().insertions, 1, "refresh is not a new insertion");
    }

    #[test]
    fn peek_fresh_respects_ttl_without_counting() {
        let cache = SolutionCache::new(&CacheConfig::default());
        cache.insert_at(4, answer(4), 0, None);
        assert!(cache.peek_fresh(4, 0, Some(0)).is_some());
        assert!(cache.peek_fresh(4, 1, Some(0)).is_none(), "stale entries read as absent");
        assert!(cache.peek_fresh(4, 1, None).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stale), (0, 0, 0));
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let cache = SolutionCache::new(&CacheConfig::default());
        assert!(cache.peek(5).is_none());
        cache.insert(5, answer(5));
        assert!(cache.peek(5).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert!(!cache.is_empty());
    }

    #[test]
    fn generic_payloads_share_the_machinery() {
        // The loom model tests drive the cache with integer payloads; make
        // sure that instantiation works outside the model too.
        let cache: SolutionCache<u64> = SolutionCache::new(&CacheConfig { capacity: 2, shards: 1 });
        cache.insert_at(1, 10, 0, None);
        assert_eq!(cache.get(1), Some(10));
        assert!(matches!(cache.lookup(1, 5, Some(1)), Lookup::Stale(10)));
    }
}
