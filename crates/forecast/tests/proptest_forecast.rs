//! Property-based verification of the forecaster's universal claims.
//!
//! The forecaster certifies a [`ClassFate::WillHold`] by exhaustively
//! probing the drift envelope; these tests re-verify that claim through the
//! *independent* machinery it predicts for: actual random walks of the
//! [`DriftModel`] and the drift-triage ladder.  A `WillHold` class must
//! install its cached basis with **zero pivots** on every walked platform,
//! and every candidate's expected rung must match what a real solve does.

use proptest::prelude::*;
use steady_core::problem::SteadyProblem;
use steady_core::scatter::ScatterProblem;
use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel, Triage};
use steady_forecast::{ClassFate, ForecastConfig, Forecaster, PredictedTriage};
use steady_lp::basis_still_optimal;
use steady_platform::{NodeId, Platform};
use steady_rational::rat;

#[derive(Debug, Clone)]
struct Scenario {
    /// Leaf link costs (1 to 2 leaves keeps the envelope exhaustively
    /// enumerable: each leaf contributes two directed edges).
    costs: Vec<(i64, i64)>,
    /// Walk laziness.
    move_probability: f64,
    /// Walk seed.
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (proptest::collection::vec((1i64..5, 1i64..6), 1..3), 0usize..4, 0u64..1_000).prop_map(
        |(costs, p_idx, seed)| Scenario {
            costs,
            move_probability: [0.1, 0.3, 0.6, 1.0][p_idx],
            seed,
        },
    )
}

fn star(costs: &[(i64, i64)]) -> (Platform, NodeId, Vec<NodeId>) {
    let costs: Vec<_> = costs.iter().map(|&(n, d)| rat(n, d)).collect();
    steady_platform::generators::heterogeneous_star(&costs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn will_hold_classes_install_with_zero_pivots_along_real_walks(
        scenario in scenario_strategy(),
    ) {
        let (platform, center, leaves) = star(&scenario.costs);
        let config = DriftConfig {
            move_probability: scenario.move_probability,
            ..DriftConfig::default()
        };
        let mut model = DriftModel::new(platform, config, scenario.seed);

        let problem = ScatterProblem::new(model.current(), center, leaves.clone()).unwrap();
        let (cold, report) = solve_steady_triaged(&problem, None).unwrap();
        let basis = report.basis.expect("cold solve yields a basis");
        prop_assert!(cold.throughput().is_positive());

        let forecaster = Forecaster::new(ForecastConfig {
            horizon: 1,
            max_candidates: usize::MAX,
            max_states: 1 << 14,
        });
        let plan = forecaster
            .forecast(&model, |p| ScatterProblem::new(p, center, leaves.clone()), &basis)
            .unwrap();
        prop_assert!(plan.exhaustive, "1-step envelopes of 1-2 leaf stars are enumerable");
        prop_assert!((plan.coverage - 1.0).abs() < 1e-9);
        prop_assert_eq!(plan.surviving + plan.exiting, plan.examined);

        // Every candidate's expected rung must agree with the independent
        // zero-pivot install probe on a freshly formulated LP.
        for candidate in &plan.candidates {
            let rebuilt =
                ScatterProblem::new(candidate.platform.clone(), center, leaves.clone()).unwrap();
            let (lp, _) = rebuilt.formulate();
            prop_assert_eq!(
                candidate.expected == PredictedTriage::InRange,
                basis_still_optimal(&lp, &basis),
                "expected rung disagrees with the install probe"
            );
        }

        // The universal WillHold claim, re-verified through real walks: any
        // one-step move of the model must triage InRange with zero pivots
        // and return the exact cold optimum.
        if plan.fate == ClassFate::WillHold {
            for _ in 0..4 {
                let drifted = model.step();
                let walked =
                    ScatterProblem::new(drifted, center, leaves.clone()).unwrap();
                let (lp, _) = walked.formulate();
                prop_assert!(
                    basis_still_optimal(&lp, &basis),
                    "a WillHold class must install with zero pivots everywhere"
                );
                let (warm, warm_report) =
                    solve_steady_triaged(&walked, Some(&basis)).unwrap();
                prop_assert_eq!(warm_report.triage, Triage::InRange);
                prop_assert_eq!(warm_report.iterations, 0);
                let (re, _) = solve_steady_triaged(&walked, None).unwrap();
                prop_assert_eq!(warm.throughput(), re.throughput());
                // Re-anchor: each verification step walks from the previous
                // state, staying inside the 1-step envelope of *its* origin
                // only if we re-forecast — so fold the new state in as the
                // next origin and stop once the class is no longer certain.
                let replan = forecaster
                    .forecast(&model, |p| ScatterProblem::new(p, center, leaves.clone()), &basis)
                    .unwrap();
                if replan.fate != ClassFate::WillHold {
                    break;
                }
            }
        }
    }

    #[test]
    fn plans_rank_by_probability_and_exclude_the_current_state(
        scenario in scenario_strategy(),
    ) {
        let (platform, center, leaves) = star(&scenario.costs);
        let config = DriftConfig {
            move_probability: scenario.move_probability,
            ..DriftConfig::default()
        };
        let model = DriftModel::new(platform, config, scenario.seed);
        let problem = ScatterProblem::new(model.current(), center, leaves.clone()).unwrap();
        let (_, report) = solve_steady_triaged(&problem, None).unwrap();
        let basis = report.basis.unwrap();

        let plan = Forecaster::new(ForecastConfig { horizon: 1, ..ForecastConfig::default() })
            .forecast(&model, |p| ScatterProblem::new(p, center, leaves.clone()), &basis)
            .unwrap();
        for pair in plan.candidates.windows(2) {
            prop_assert!(pair[0].probability >= pair[1].probability);
        }
        for candidate in &plan.candidates {
            prop_assert!(candidate.probability > 0.0);
            prop_assert_ne!(&candidate.walkers, model.walkers());
        }
    }
}
