//! The forecaster: exact drift envelopes, survival certification and ranked
//! presolve plans.
//!
//! A [`DriftModel`]'s walkers move on a bounded integer grid, at most one
//! cell per step, so after `k` steps the reachable joint states form the
//! product of per-edge intervals ([`DriftModel::reachable_walkers`]).  The
//! walk is a product of independent per-edge lazy chains, so the exact
//! probability of any joint state at horizon `k` is the product of per-edge
//! chain probabilities — computable by a tiny dynamic program over the grid.
//!
//! [`Forecaster::forecast`] enumerates that envelope **best-first by
//! probability** (a classic top-k walk over the product of per-edge
//! value lists, each sorted by probability), certifies every visited state
//! with the zero-pivot survival probe ([`basis_still_optimal`]) and returns:
//!
//! * a [`ClassFate`] for the structural class — will the cached basis hold
//!   across the whole envelope, may it exit, or does *any* movement break
//!   it; and
//! * a [`PresolvePlan`]: the likeliest next platforms (the current state,
//!   already cached, is excluded), each tagged with the triage rung a
//!   future solve is expected to take.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use steady_core::error::CoreError;
use steady_core::problem::{SolvedBasis, SteadyProblem};
use steady_drift::DriftModel;
use steady_lp::basis_still_optimal;
use steady_platform::Platform;

/// Shape of a forecast: how far ahead to look and how much of the envelope
/// to examine.
#[derive(Debug, Clone)]
pub struct ForecastConfig {
    /// Forecast horizon in drift steps; the envelope is every state
    /// reachable within this many steps.
    pub horizon: u64,
    /// Maximum number of candidate platforms in the emitted plan (the
    /// likeliest ones win; the current state is never a candidate).
    pub max_candidates: usize,
    /// Hard cap on envelope states examined.  When the envelope is larger,
    /// the forecast stops after the `max_states` likeliest states and the
    /// class can no longer be certified [`ClassFate::WillHold`] — only
    /// exhaustive coverage proves a universal claim.
    pub max_states: usize,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig { horizon: 1, max_candidates: 16, max_states: 2048 }
    }
}

/// Predicted fate of a structural class's cached basis over the forecast
/// horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassFate {
    /// Every reachable platform keeps the cached basis optimal (certified
    /// exhaustively): future drifted solves will re-price `InRange` with
    /// zero pivots, so there is nothing worth pre-solving urgently.
    WillHold,
    /// Some reachable platforms keep the basis and some break it — or the
    /// envelope was too large to certify exhaustively.  The plan's
    /// candidates are worth pre-solving during idle time.
    MayExit,
    /// Every reachable platform on which *anything* moved breaks the basis
    /// (certified exhaustively): the very next drift step will need repair
    /// pivots unless its answer was pre-solved.
    WillExit,
}

impl ClassFate {
    /// Short lowercase label for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClassFate::WillHold => "will-hold",
            ClassFate::MayExit => "may-exit",
            ClassFate::WillExit => "will-exit",
        }
    }
}

/// The triage rung a future solve of a candidate platform is expected to
/// take (a prediction, verified by the actual solve — never load-bearing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictedTriage {
    /// The cached basis is still optimal there: the solve will re-price
    /// with zero pivots.
    InRange,
    /// The cached basis breaks there: the solve will spend repair pivots
    /// (dual repair, warm resolve or — rarely — a cold fallback).
    Repair,
}

impl PredictedTriage {
    /// Short lowercase label for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PredictedTriage::InRange => "in-range",
            PredictedTriage::Repair => "repair",
        }
    }
}

/// One candidate future platform worth pre-solving.
#[derive(Debug, Clone)]
pub struct PlannedSolve {
    /// The predicted platform (the drift model's topology with every edge
    /// cost at the candidate walker position).
    pub platform: Platform,
    /// The walker position of each edge in this candidate.
    pub walkers: Vec<i64>,
    /// Exact probability that the walk sits at exactly this state after
    /// `horizon` steps (an `f64` of an exact product — ranking aid only).
    pub probability: f64,
    /// The triage rung a solve of this platform is expected to take.
    pub expected: PredictedTriage,
}

/// Outcome of one forecast: the class fate plus the ranked presolve plan.
#[derive(Debug, Clone)]
pub struct PresolvePlan {
    /// Predicted fate of the class's cached basis over the horizon.
    pub fate: ClassFate,
    /// Candidate platforms, likeliest first, current state excluded.
    pub candidates: Vec<PlannedSolve>,
    /// Envelope states examined (including the current state).
    pub examined: usize,
    /// `true` when the whole reachable envelope was examined — the
    /// precondition for the universal [`ClassFate`] claims.
    pub exhaustive: bool,
    /// Examined states on which the cached basis survives.
    pub surviving: usize,
    /// Examined states on which the cached basis breaks.
    pub exiting: usize,
    /// Total probability mass of the examined states (1.0 when exhaustive,
    /// up to rounding).
    pub coverage: f64,
}

impl PresolvePlan {
    /// Candidates predicted to exit the cached basis's optimality range.
    pub fn predicted_exits(&self) -> usize {
        self.candidates.iter().filter(|c| c.expected == PredictedTriage::Repair).count()
    }
}

/// Rolls a [`DriftModel`] forward `horizon` steps *in distribution* and
/// turns the reachable envelope into a certified [`PresolvePlan`].
#[derive(Debug, Clone, Default)]
pub struct Forecaster {
    config: ForecastConfig,
}

impl Forecaster {
    /// Creates a forecaster with the given configuration.
    pub fn new(config: ForecastConfig) -> Forecaster {
        Forecaster { config }
    }

    /// The forecaster's configuration.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Forecasts the fate of `basis` — the cached optimal basis of the
    /// steady-state problem built by `build` on the model's *current*
    /// platform — over every platform reachable within the configured
    /// horizon, and returns the ranked presolve plan.
    ///
    /// `build` constructs the collective problem for an arbitrary drifted
    /// platform (same topology and roles, different edge costs); it is
    /// called once per examined envelope state.  Errors from `build` (or a
    /// degenerate formulation) propagate — a platform the problem
    /// constructor rejects cannot be forecast.
    pub fn forecast<P, B>(
        &self,
        model: &DriftModel,
        build: B,
        basis: &SolvedBasis,
    ) -> Result<PresolvePlan, CoreError>
    where
        P: SteadyProblem,
        B: Fn(Platform) -> Result<P, CoreError>,
    {
        let values = per_edge_distributions(model, self.config.horizon);
        let current = model.walkers();

        // Best-first walk over the product of the per-edge value lists
        // (each sorted by probability): the heap always pops the most
        // probable unvisited joint state, so truncation keeps exactly the
        // likeliest `max_states` states.
        let mut heap = BinaryHeap::new();
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        let start = vec![0usize; values.len()];
        heap.push(HeapState { probability: state_probability(&values, &start), indices: start });

        let mut examined = 0usize;
        let mut surviving = 0usize;
        let mut exiting = 0usize;
        let mut moved_surviving = 0usize;
        let mut coverage = 0.0f64;
        let mut candidates: Vec<PlannedSolve> = Vec::new();
        let mut truncated = false;

        while let Some(state) = heap.pop() {
            if !seen.insert(state.indices.clone()) {
                continue;
            }
            if examined >= self.config.max_states {
                truncated = true;
                break;
            }
            examined += 1;
            coverage += state.probability;

            let walkers: Vec<i64> =
                state.indices.iter().zip(&values).map(|(&i, vals)| vals[i].0).collect();
            let moved = walkers != current;
            // Only plan-bound states need a second copy of the platform;
            // the probe consumes the first.
            let keep = moved && candidates.len() < self.config.max_candidates;
            let platform = model.platform_at(&walkers);
            let kept = keep.then(|| platform.clone());
            let problem = build(platform)?;
            let (lp, _) = problem.formulate();
            let survives = basis_still_optimal(&lp, basis);
            if survives {
                surviving += 1;
            } else {
                exiting += 1;
            }
            if moved {
                if survives {
                    moved_surviving += 1;
                }
                if let Some(platform) = kept {
                    candidates.push(PlannedSolve {
                        platform,
                        walkers,
                        probability: state.probability,
                        expected: if survives {
                            PredictedTriage::InRange
                        } else {
                            PredictedTriage::Repair
                        },
                    });
                }
            }

            // Successors: advance one coordinate to its next-likeliest value.
            for (j, vals) in values.iter().enumerate() {
                let next = state.indices[j] + 1;
                if next < vals.len() {
                    let mut indices = state.indices.clone();
                    indices[j] = next;
                    if !seen.contains(&indices) {
                        heap.push(HeapState {
                            probability: state_probability(&values, &indices),
                            indices,
                        });
                    }
                }
            }
        }

        let exhaustive = !truncated;
        let moved_examined = examined.saturating_sub(1);
        let fate = if exhaustive && exiting == 0 {
            ClassFate::WillHold
        } else if exhaustive && moved_examined > 0 && moved_surviving == 0 {
            ClassFate::WillExit
        } else {
            ClassFate::MayExit
        };
        Ok(PresolvePlan { fate, candidates, examined, exhaustive, surviving, exiting, coverage })
    }
}

/// Joint probability of the state selecting `indices[e]` from each edge's
/// value list (the walks are independent, so it is a plain product).
fn state_probability(values: &[Vec<(i64, f64)>], indices: &[usize]) -> f64 {
    indices.iter().zip(values).map(|(&i, vals)| vals[i].1).product()
}

/// Exact `k`-step distribution of each edge's walker, as `(position,
/// probability)` lists sorted by descending probability (deterministic
/// tie-break: smaller drift from the current position first, then the
/// smaller position).
///
/// One chain step: the walker stays with probability `1 - p`, otherwise it
/// attempts a uniform `±1` move that is clamped at the grid boundary (a
/// clamped move stays in place, so boundary mass accumulates exactly as in
/// [`DriftModel::step`]).
fn per_edge_distributions(model: &DriftModel, k: u64) -> Vec<Vec<(i64, f64)>> {
    let config = model.config();
    let p = config.move_probability;
    let min = config.min_num;
    let span = (config.max_num - min + 1) as usize;

    model
        .walkers()
        .iter()
        .map(|&w0| {
            let mut dist = vec![0.0f64; span];
            dist[(w0 - min) as usize] = 1.0;
            for _ in 0..k {
                let mut next = vec![0.0f64; span];
                for (i, &mass) in dist.iter().enumerate() {
                    if mass == 0.0 {
                        continue;
                    }
                    next[i] += mass * (1.0 - p);
                    let down = i.saturating_sub(1);
                    let up = if i + 1 < span { i + 1 } else { i };
                    next[down] += mass * p / 2.0;
                    next[up] += mass * p / 2.0;
                }
                dist = next;
            }
            let mut vals: Vec<(i64, f64)> = dist
                .into_iter()
                .enumerate()
                .filter(|(_, p)| *p > 0.0)
                .map(|(i, p)| (min + i as i64, p))
                .collect();
            vals.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| (a.0 - w0).abs().cmp(&(b.0 - w0).abs()))
                    .then_with(|| a.0.cmp(&b.0))
            });
            vals
        })
        .collect()
}

/// A joint state in the best-first envelope walk, ordered by probability
/// (ties broken by the index vector so the walk is deterministic).
struct HeapState {
    probability: f64,
    indices: Vec<usize>,
}

impl PartialEq for HeapState {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapState {}

impl PartialOrd for HeapState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapState {
    fn cmp(&self, other: &Self) -> Ordering {
        // Probabilities are finite and positive; ties prefer the
        // lexicographically smaller index vector (less total drift).
        self.probability
            .partial_cmp(&other.probability)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.indices.cmp(&self.indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_core::scatter::ScatterProblem;
    use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel, Triage};
    use steady_platform::generators::heterogeneous_star;
    use steady_platform::{NodeId, Platform};
    use steady_rational::rat;

    fn star(costs: &[steady_rational::Ratio]) -> (Platform, NodeId, Vec<NodeId>) {
        heterogeneous_star(costs)
    }

    fn scatter_builder(
        center: NodeId,
        leaves: Vec<NodeId>,
    ) -> impl Fn(Platform) -> Result<ScatterProblem, CoreError> {
        move |platform| ScatterProblem::new(platform, center, leaves.clone())
    }

    fn basis_for(model: &DriftModel, center: NodeId, leaves: &[NodeId]) -> SolvedBasis {
        let problem = ScatterProblem::new(model.current(), center, leaves.to_vec()).unwrap();
        let (_, report) = solve_steady_triaged(&problem, None).unwrap();
        report.basis.expect("cold solve yields a basis")
    }

    #[test]
    fn distributions_are_exact_for_one_step() {
        // A 2-leaf star has four directed edges (symmetric links).
        let (platform, _, _) = star(&[rat(1, 2), rat(1, 3)]);
        let config = DriftConfig { grid: 16, min_num: 8, max_num: 32, move_probability: 0.4 };
        let model = DriftModel::new(platform, config, 1);
        let dists = per_edge_distributions(&model, 1);
        assert_eq!(dists.len(), 4);
        for dist in &dists {
            // Walker starts at 16 (interior): stays with 0.6, ±1 with 0.2.
            let total: f64 = dist.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert_eq!(dist[0].0, 16);
            assert!((dist[0].1 - 0.6).abs() < 1e-12);
            assert_eq!(dist.len(), 3);
            assert!((dist[1].1 - 0.2).abs() < 1e-12);
            assert!((dist[2].1 - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_mass_accumulates_under_clamping() {
        let (platform, _, _) = star(&[rat(1, 2)]);
        let config = DriftConfig { grid: 4, min_num: 4, max_num: 5, move_probability: 1.0 };
        let model = DriftModel::new(platform, config, 1);
        // Walker at the lower boundary with p = 1: half the mass clamps in
        // place, half moves up.
        let dists = per_edge_distributions(&model, 1);
        let dist = &dists[0];
        let at = |w: i64| dist.iter().find(|(v, _)| *v == w).map(|(_, p)| *p).unwrap_or(0.0);
        assert!((at(4) - 0.5).abs() < 1e-12);
        assert!((at(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn a_wide_grid_keeps_the_basis_and_certifies_will_hold() {
        // A 1-leaf star (two directed edges) whose one-step envelope moves
        // costs by 1/16 at most: the scatter basis survives every reachable
        // state, and the forecast proves it exhaustively.
        let (platform, center, leaves) = star(&[rat(1, 2)]);
        let model = DriftModel::new(platform, DriftConfig::default(), 5);
        let basis = basis_for(&model, center, &leaves);
        let forecaster = Forecaster::new(ForecastConfig::default());
        let plan =
            forecaster.forecast(&model, scatter_builder(center, leaves.clone()), &basis).unwrap();
        assert!(plan.exhaustive);
        assert_eq!(plan.examined, 9, "3 x 3 one-step envelope");
        assert!((plan.coverage - 1.0).abs() < 1e-9);
        assert_eq!(plan.fate, ClassFate::WillHold);
        assert_eq!(plan.exiting, 0);
        // Every candidate is a genuinely moved state, ranked by probability.
        assert_eq!(plan.candidates.len(), 8);
        for pair in plan.candidates.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
        assert!(plan.candidates.iter().all(|c| c.expected == PredictedTriage::InRange));
        assert_eq!(plan.predicted_exits(), 0);

        // Re-verify the universal claim through the actual triage ladder.
        for candidate in &plan.candidates {
            let problem =
                ScatterProblem::new(candidate.platform.clone(), center, leaves.clone()).unwrap();
            let (_, report) = solve_steady_triaged(&problem, Some(&basis)).unwrap();
            assert_eq!(report.triage, Triage::InRange, "WillHold candidate needed pivots");
            assert_eq!(report.iterations, 0);
        }
    }

    #[test]
    fn truncated_envelopes_are_never_certified() {
        let (platform, center, leaves) = star(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
        let model = DriftModel::new(platform, DriftConfig::default(), 5);
        let basis = basis_for(&model, center, &leaves);
        let forecaster = Forecaster::new(ForecastConfig {
            horizon: 1,
            max_candidates: 4,
            max_states: 5, // 27 reachable: forced truncation
        });
        let plan = forecaster.forecast(&model, scatter_builder(center, leaves), &basis).unwrap();
        assert!(!plan.exhaustive);
        assert_eq!(plan.examined, 5);
        assert_eq!(plan.fate, ClassFate::MayExit, "no universal claim from a partial envelope");
        assert!(plan.candidates.len() <= 4);
        assert!(plan.coverage < 1.0);
    }

    #[test]
    fn a_foreign_basis_exits_everywhere_and_predicts_repairs() {
        // Certify against the basis of a *different* structural class: it
        // does not even install, so every state (including the current one)
        // reads as exiting and every candidate predicts a repair.
        let (platform, center, leaves) = star(&[rat(1, 2), rat(1, 3)]);
        let model = DriftModel::new(platform, DriftConfig::default(), 5);
        let foreign = SolvedBasis { cols: vec![0, 1, 2], num_cols: 99, n_structural: 7 };
        let forecaster = Forecaster::new(ForecastConfig::default());
        let plan = forecaster.forecast(&model, scatter_builder(center, leaves), &foreign).unwrap();
        assert!(plan.exhaustive);
        assert_eq!(plan.surviving, 0);
        assert_eq!(plan.fate, ClassFate::WillExit);
        assert!(plan.candidates.iter().all(|c| c.expected == PredictedTriage::Repair));
        assert_eq!(plan.predicted_exits(), plan.candidates.len());
    }

    #[test]
    fn candidate_platforms_match_their_walkers() {
        let (platform, center, leaves) = star(&[rat(1, 2), rat(1, 3)]);
        let model = DriftModel::new(platform, DriftConfig::default(), 5);
        let basis = basis_for(&model, center, &leaves);
        let plan = Forecaster::new(ForecastConfig::default())
            .forecast(&model, scatter_builder(center, leaves), &basis)
            .unwrap();
        for candidate in &plan.candidates {
            let rebuilt = model.platform_at(&candidate.walkers);
            for (a, b) in rebuilt.edge_ids().zip(candidate.platform.edge_ids()) {
                assert_eq!(rebuilt.edge(a).cost, candidate.platform.edge(b).cost);
            }
            assert_ne!(candidate.walkers, model.walkers(), "the current state is not a candidate");
        }
    }
}
