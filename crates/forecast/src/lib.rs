//! Speculative pre-solving of predicted drifted platforms.
//!
//! The drift pipeline (`steady-drift`) made *reacting* to cost drift cheap:
//! a drifted query triages against its structural class's cached simplex
//! basis and usually re-prices in range or repairs with a few dual pivots.
//! But the first drifted solve still sits on the query's critical path.
//! This crate removes it by turning the drift model into a *predictor*:
//!
//! * the walkers of a [`DriftModel`](steady_drift::DriftModel) live on a
//!   bounded integer grid and move
//!   at most one cell per step, so the set of platforms reachable within `k`
//!   steps is **exactly** the product of per-edge walker intervals — a
//!   finite, enumerable drift envelope, not a statistical blur;
//! * each envelope state is certified with the exact zero-pivot survival
//!   probe ([`steady_lp::basis_still_optimal`]): either the cached basis is
//!   still optimal there (a future query would triage `InRange` for free)
//!   or it is not (the solve would need repair pivots) — edge costs sit in
//!   the *constraint matrix* of the collective LPs, which no single-axis
//!   sensitivity interval can bound jointly, so certification is per state
//!   (the single-axis predictors, [`steady_lp::objective_ranging`] and
//!   [`steady_lp::rhs_ranging`], cover the one-coefficient case);
//! * [`Forecaster::forecast`] walks the envelope best-first by exact
//!   `k`-step probability, classifies the class
//!   ([`ClassFate::WillHold`] / [`ClassFate::MayExit`] /
//!   [`ClassFate::WillExit`]) and emits a ranked [`PresolvePlan`] of the
//!   likeliest next platforms with their expected triage rungs — the work
//!   list an idle serving worker drains to pre-solve the future.
//!
//! Speculation never touches correctness: a pre-solved answer is produced
//! by the same triage ladder as a demand solve and is bit-identical
//! (`Ratio`-equal) to a cold solve; a wrong prediction only wastes the idle
//! cycles it was computed in.
//!
//! # Example
//!
//! ```
//! use steady_forecast::{ClassFate, ForecastConfig, Forecaster};
//! use steady_core::problem::SteadyProblem;
//! use steady_core::scatter::ScatterProblem;
//! use steady_drift::{DriftConfig, DriftModel};
//! use steady_platform::generators::heterogeneous_star;
//! use steady_rational::rat;
//!
//! let (platform, center, leaves) = heterogeneous_star(&[rat(1, 2), rat(1, 3)]);
//! let model = DriftModel::new(platform, DriftConfig::default(), 42);
//!
//! // Solve the current platform once and keep the basis.
//! let problem = ScatterProblem::new(model.current(), center, leaves.clone()).unwrap();
//! let (_, report) = steady_drift::solve_steady_triaged(&problem, None).unwrap();
//! let basis = report.basis.unwrap();
//!
//! // Forecast one step ahead: every reachable platform is classified.
//! let forecaster = Forecaster::new(ForecastConfig::default());
//! let plan = forecaster
//!     .forecast(&model, |p| ScatterProblem::new(p, center, leaves.clone()), &basis)
//!     .unwrap();
//! assert!(plan.exhaustive, "a one-step envelope on a 2-edge star is tiny");
//! assert!(!matches!(plan.fate, ClassFate::WillExit) || !plan.candidates.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod forecaster;

pub use forecaster::{
    ClassFate, ForecastConfig, Forecaster, PlannedSolve, PredictedTriage, PresolvePlan,
};
