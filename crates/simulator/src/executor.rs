//! Periodic-schedule executor with the §3.4 buffer discipline.
//!
//! The paper's concrete scheduling algorithm plays the periodic schedule with
//! forwarding buffers: a node only re-emits data it received in *previous*
//! periods, so the first `diameter` periods act as an initialization phase,
//! followed by full-rate steady-state periods, and the pipeline drains during
//! clean-up.  This executor simulates exactly that discipline — it never moves
//! or combines a value the node does not actually hold — and reports how many
//! complete collective operations finish within a given time horizon.
//!
//! Comparing the measured count against the Lemma-1 upper bound `TP × K`
//! reproduces the asymptotic-optimality statement of Proposition 1
//! empirically: the efficiency tends to 1 as the horizon grows.

use std::collections::BTreeMap;

use steady_core::reduce::{Interval, ReduceProblem};
use steady_core::scatter::ScatterProblem;
use steady_core::schedule::{Payload, PeriodicSchedule};
use steady_platform::NodeId;
use steady_rational::{BigInt, Ratio};

/// Outcome of executing a periodic schedule for a finite horizon.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Time horizon that was simulated.
    pub horizon: Ratio,
    /// Number of full periods that fit in the horizon.
    pub periods: BigInt,
    /// Complete collective operations finished within the horizon.
    pub completed_operations: Ratio,
    /// Lemma-1 upper bound `TP × horizon` on any schedule.
    pub upper_bound: Ratio,
}

impl ExecutionReport {
    /// `completed / upper_bound`; tends to 1 as the horizon grows (Prop. 1).
    pub fn efficiency(&self) -> Ratio {
        if !self.upper_bound.is_positive() {
            return Ratio::zero();
        }
        &self.completed_operations / &self.upper_bound
    }
}

/// Executes a scatter schedule for `horizon` time-units.
///
/// Buffers start empty (cold start): the measured operation count includes the
/// initialization-phase loss, which is exactly what Proposition 1 bounds.
pub fn execute_scatter_schedule(
    problem: &ScatterProblem,
    schedule: &PeriodicSchedule,
    throughput: &Ratio,
    horizon: &Ratio,
) -> ExecutionReport {
    let source = problem.source();
    let periods = (horizon / &schedule.period).floor();
    let periods_u = big_to_u64(&periods);

    // stock[(holder, destination)] = messages for `destination` held by `holder`.
    let mut stock: BTreeMap<(NodeId, NodeId), Ratio> = BTreeMap::new();
    let mut delivered: BTreeMap<NodeId, Ratio> =
        problem.targets().iter().map(|&t| (t, Ratio::zero())).collect();

    for _ in 0..periods_u {
        let mut available = stock.clone();
        let mut incoming: BTreeMap<(NodeId, NodeId), Ratio> = BTreeMap::new();
        for slot in &schedule.slots {
            for t in &slot.transfers {
                let Payload::Scatter { destination } = &t.payload else { continue };
                let wanted = t.count.clone();
                let sent = if t.from == source {
                    wanted
                } else {
                    let have =
                        available.get(&(t.from, *destination)).cloned().unwrap_or_else(Ratio::zero);
                    let sent = wanted.min(have);
                    if sent.is_positive() {
                        *available.get_mut(&(t.from, *destination)).unwrap() =
                            available[&(t.from, *destination)].clone() - &sent;
                        *stock.get_mut(&(t.from, *destination)).unwrap() =
                            stock[&(t.from, *destination)].clone() - &sent;
                    }
                    sent
                };
                if sent.is_positive() {
                    *incoming.entry((t.to, *destination)).or_insert_with(Ratio::zero) += &sent;
                }
            }
        }
        for ((to, destination), amount) in incoming {
            if to == destination {
                *delivered.get_mut(&destination).expect("known target") += &amount;
            } else {
                *stock.entry((to, destination)).or_insert_with(Ratio::zero) += &amount;
            }
        }
    }

    // A scatter operation is complete once every target received its message.
    let completed = delivered.values().cloned().min().unwrap_or_else(Ratio::zero);
    ExecutionReport {
        horizon: horizon.clone(),
        periods,
        completed_operations: completed,
        upper_bound: throughput * horizon,
    }
}

/// Executes a reduce schedule for `horizon` time-units.
pub fn execute_reduce_schedule(
    problem: &ReduceProblem,
    schedule: &PeriodicSchedule,
    throughput: &Ratio,
    horizon: &Ratio,
) -> ExecutionReport {
    let n = problem.last_index();
    let target = problem.target();
    let periods = (horizon / &schedule.period).floor();
    let periods_u = big_to_u64(&periods);

    // stock[(holder, interval)] = partial values v[interval] held by `holder`.
    let mut stock: BTreeMap<(NodeId, Interval), Ratio> = BTreeMap::new();
    let mut completed = Ratio::zero();

    let is_unlimited = |node: NodeId, interval: Interval| {
        interval.0 == interval.1 && problem.participant_index(node) == Some(interval.0)
    };

    for _ in 0..periods_u {
        let mut available = stock.clone();
        let mut incoming: BTreeMap<(NodeId, Interval), Ratio> = BTreeMap::new();

        // Communications, slot by slot.
        for slot in &schedule.slots {
            for t in &slot.transfers {
                let Payload::Partial { lo, hi } = &t.payload else { continue };
                let interval = (*lo, *hi);
                let wanted = t.count.clone();
                let sent = if is_unlimited(t.from, interval) {
                    wanted
                } else {
                    let have =
                        available.get(&(t.from, interval)).cloned().unwrap_or_else(Ratio::zero);
                    let sent = wanted.min(have);
                    if sent.is_positive() {
                        *available.get_mut(&(t.from, interval)).unwrap() =
                            available[&(t.from, interval)].clone() - &sent;
                        *stock.get_mut(&(t.from, interval)).unwrap() =
                            stock[&(t.from, interval)].clone() - &sent;
                    }
                    sent
                };
                if sent.is_positive() {
                    *incoming.entry((t.to, interval)).or_insert_with(Ratio::zero) += &sent;
                }
            }
        }

        // Computations (fully overlapped; they also consume start-of-period stock).
        for op in &schedule.computations {
            let (k, l, m) = op.task;
            let left = (k, l);
            let right = (l + 1, m);
            let mut doable = op.count.clone();
            for input in [left, right] {
                if is_unlimited(op.node, input) {
                    continue;
                }
                let have = available.get(&(op.node, input)).cloned().unwrap_or_else(Ratio::zero);
                doable = doable.min(have);
            }
            if !doable.is_positive() {
                continue;
            }
            for input in [left, right] {
                if is_unlimited(op.node, input) {
                    continue;
                }
                *available.get_mut(&(op.node, input)).unwrap() =
                    available[&(op.node, input)].clone() - &doable;
                *stock.get_mut(&(op.node, input)).unwrap() =
                    stock[&(op.node, input)].clone() - &doable;
            }
            *incoming.entry((op.node, (k, m))).or_insert_with(Ratio::zero) += &doable;
        }

        for ((node, interval), amount) in incoming {
            if node == target && interval == (0, n) {
                completed += &amount;
            } else {
                *stock.entry((node, interval)).or_insert_with(Ratio::zero) += &amount;
            }
        }
    }

    ExecutionReport {
        horizon: horizon.clone(),
        periods,
        completed_operations: completed,
        upper_bound: throughput * horizon,
    }
}

fn big_to_u64(b: &BigInt) -> u64 {
    b.to_u64().unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_core::reduce::ReduceProblem;
    use steady_core::scatter::ScatterProblem;
    use steady_platform::generators::{figure2, figure6};
    use steady_rational::rat;

    #[test]
    fn scatter_efficiency_tends_to_one() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();

        let mut last = Ratio::zero();
        for horizon in [40i64, 200, 1000, 5000] {
            let report = execute_scatter_schedule(
                &problem,
                &schedule,
                solution.throughput(),
                &rat(horizon, 1),
            );
            // Never beats the Lemma-1 bound.
            assert!(report.completed_operations <= report.upper_bound);
            let eff = report.efficiency();
            assert!(eff >= last, "efficiency decreased: {eff} < {last}");
            last = eff;
        }
        assert!(last > rat(9, 10), "efficiency at K = 5000 is only {last}");
    }

    #[test]
    fn scatter_cold_start_loses_little() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let report =
            execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(1000, 1));
        // The loss is bounded by a constant number of periods (pipeline depth).
        let loss = &report.upper_bound - &report.completed_operations;
        let depth_bound = &Ratio::from(problem.platform().max_hop_diameter() + 2)
            * &(&schedule.period * solution.throughput());
        assert!(loss <= depth_bound, "loss {loss} exceeds pipeline-depth bound {depth_bound}");
    }

    #[test]
    fn reduce_efficiency_tends_to_one() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();

        let mut last = Ratio::zero();
        for horizon in [10i64, 100, 1000] {
            let report = execute_reduce_schedule(
                &problem,
                &schedule,
                solution.throughput(),
                &rat(horizon, 1),
            );
            assert!(report.completed_operations <= report.upper_bound);
            let eff = report.efficiency();
            assert!(eff >= last);
            last = eff;
        }
        assert!(last > rat(9, 10), "reduce efficiency is only {last}");
    }

    #[test]
    fn short_horizon_completes_nothing() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let report =
            execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(1, 1));
        assert_eq!(report.completed_operations, Ratio::zero());
        assert_eq!(report.efficiency(), Ratio::zero());
        assert!(report.periods.is_zero());
    }
}
