//! Parallel parameter sweeps.
//!
//! The benchmark harness evaluates many independent configurations (horizons,
//! random platforms, period sizes).  [`parallel_map`] fans the work out over a
//! bounded pool of OS threads using crossbeam's scoped threads — results come
//! back in input order, and a panic in any worker propagates to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every input, using up to `workers` threads, and returns the
/// results in input order.
///
/// `workers = 0` is interpreted as "one worker per available CPU".
///
/// Work is distributed by an atomic next-index counter over per-slot storage:
/// claiming an item is one `fetch_add` instead of a global queue lock, inputs
/// are processed in forward order, and each worker writes its result into its
/// own slot without contending with the others.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    };
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n).max(1);

    // Per-slot storage: the claim ticket comes from `next`, so the per-item
    // mutexes are never contended — they only move values across threads.
    let slots: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                // relaxed: a claim ticket only needs atomicity, not order —
                // each index is handed to exactly one worker either way.
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let input = slots[idx].lock().take().expect("each index is claimed once");
                let out = f(input);
                *results[idx].lock() = Some(out);
            });
        }
    })
    .expect("a sweep worker panicked");

    results.into_iter().map(|slot| slot.into_inner().expect("every input was processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), 4, |x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_means_auto() {
        let out = parallel_map(vec![1u64, 2, 3], 0, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(vec![5u64], 16, |x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(vec![1u64, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
