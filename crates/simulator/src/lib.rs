//! Discrete-event simulation of the one-port, full-overlap model.
//!
//! The paper's evaluation is analytical (LP-driven); this crate supplies the
//! dynamic counterpart used by the reproduction's experiments:
//!
//! * [`executor`] — plays a [`steady_core::schedule::PeriodicSchedule`] with
//!   the forwarding-buffer discipline of §3.4 (cold start, steady state,
//!   drain) and measures how many complete collective operations finish
//!   within a time horizon.  Comparing against the Lemma-1 bound `TP × K`
//!   reproduces Proposition 1 (asymptotic optimality) empirically.
//! * [`engine`] — a resource-constrained DAG simulator (transfers occupy both
//!   ports, computations occupy the compute unit) used to evaluate the
//!   baseline collective algorithms of `steady-baselines` under exactly the
//!   same platform model.
//! * [`sweep`] — a small parallel map over independent configurations, used
//!   by the benchmark harness for parameter sweeps.
//!
//! # Example
//!
//! ```
//! use steady_core::scatter::ScatterProblem;
//! use steady_platform::generators::figure2;
//! use steady_rational::rat;
//! use steady_sim::executor::execute_scatter_schedule;
//!
//! let problem = ScatterProblem::from_instance(figure2()).unwrap();
//! let solution = problem.solve().unwrap();
//! let schedule = solution.build_schedule(&problem).unwrap();
//! let report = execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(600, 1));
//! assert!(report.completed_operations <= report.upper_bound);
//! assert!(report.efficiency() > rat(9, 10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod executor;
pub mod sweep;

pub use engine::{simulate, Dag, DagOp, OpId, OpKind, SimError, SimResult};
pub use executor::{execute_reduce_schedule, execute_scatter_schedule, ExecutionReport};
pub use sweep::parallel_map;
