//! Resource-constrained discrete-event engine for the one-port model.
//!
//! Baseline collective algorithms (direct scatters, tree reduces, ...) are
//! expressed as DAGs of transfers and computations.  [`simulate`] plays such a
//! DAG under the one-port, full-overlap model: a transfer occupies the
//! sender's outgoing port and the receiver's incoming port for its whole
//! duration, a computation occupies the node's compute unit, and an operation
//! starts as soon as its dependencies have completed and its resources are
//! free (greedy list scheduling, earliest-start-time order).
//!
//! Time is kept in exact rationals so that results can be compared exactly
//! with the LP-derived bounds.

use std::collections::BTreeMap;

use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;

/// Identifier of an operation inside a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

/// Kind of DAG operation.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// Point-to-point transfer occupying both ports for `duration`.
    Transfer {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Busy time of both ports.
        duration: Ratio,
    },
    /// Computation occupying the node's compute unit for `duration`.
    Compute {
        /// Executing node.
        node: NodeId,
        /// Busy time of the compute unit.
        duration: Ratio,
    },
    /// Zero-duration synchronization point (used to mark the completion of one
    /// collective operation in a pipelined series).
    Milestone,
}

/// One operation of a DAG.
#[derive(Debug, Clone)]
pub struct DagOp {
    /// What the operation does.
    pub kind: OpKind,
    /// Operations that must complete before this one starts.
    pub deps: Vec<OpId>,
}

/// A DAG of transfers and computations.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    ops: Vec<DagOp>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds an operation and returns its id.
    pub fn add(&mut self, kind: OpKind, deps: Vec<OpId>) -> OpId {
        self.ops.push(DagOp { kind, deps });
        OpId(self.ops.len() - 1)
    }

    /// Convenience: adds a transfer.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, duration: Ratio, deps: Vec<OpId>) -> OpId {
        self.add(OpKind::Transfer { from, to, duration }, deps)
    }

    /// Convenience: adds a computation.
    pub fn compute(&mut self, node: NodeId, duration: Ratio, deps: Vec<OpId>) -> OpId {
        self.add(OpKind::Compute { node, duration }, deps)
    }

    /// Convenience: adds a milestone.
    pub fn milestone(&mut self, deps: Vec<OpId>) -> OpId {
        self.add(OpKind::Milestone, deps)
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the DAG has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operations slice.
    pub fn ops(&self) -> &[DagOp] {
        &self.ops
    }
}

/// Errors raised by the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An operation depends on itself transitively.
    CyclicDependencies,
    /// An operation references a node missing from the platform.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
    /// A transfer uses a link that does not exist in the platform.
    MissingLink {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A duration is negative.
    NegativeDuration,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CyclicDependencies => write!(f, "the DAG contains a dependency cycle"),
            SimError::UnknownNode { node } => write!(f, "unknown node {node}"),
            SimError::MissingLink { from, to } => write!(f, "no link {from} -> {to}"),
            SimError::NegativeDuration => write!(f, "negative duration"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of simulating a DAG.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of every operation.
    pub finish_times: Vec<Ratio>,
    /// Time at which the last operation completes.
    pub makespan: Ratio,
}

impl SimResult {
    /// Finish time of `op`.
    pub fn finish(&self, op: OpId) -> &Ratio {
        &self.finish_times[op.0]
    }
}

/// Simulates `dag` on `platform` under the one-port, full-overlap model.
pub fn simulate(platform: &Platform, dag: &Dag) -> Result<SimResult, SimError> {
    let n_ops = dag.len();
    // Validate operations.
    for op in dag.ops() {
        match &op.kind {
            OpKind::Transfer { from, to, duration } => {
                if from.index() >= platform.num_nodes() {
                    return Err(SimError::UnknownNode { node: *from });
                }
                if to.index() >= platform.num_nodes() {
                    return Err(SimError::UnknownNode { node: *to });
                }
                if platform.edge_between(*from, *to).is_none() {
                    return Err(SimError::MissingLink { from: *from, to: *to });
                }
                if duration.is_negative() {
                    return Err(SimError::NegativeDuration);
                }
            }
            OpKind::Compute { node, duration } => {
                if node.index() >= platform.num_nodes() {
                    return Err(SimError::UnknownNode { node: *node });
                }
                if duration.is_negative() {
                    return Err(SimError::NegativeDuration);
                }
            }
            OpKind::Milestone => {}
        }
    }

    // Per-resource availability times.
    let mut send_free: BTreeMap<NodeId, Ratio> = BTreeMap::new();
    let mut recv_free: BTreeMap<NodeId, Ratio> = BTreeMap::new();
    let mut compute_free: BTreeMap<NodeId, Ratio> = BTreeMap::new();

    let mut finish: Vec<Option<Ratio>> = vec![None; n_ops];
    let mut remaining_deps: Vec<usize> = dag.ops().iter().map(|o| o.deps.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
    for (i, op) in dag.ops().iter().enumerate() {
        for d in &op.deps {
            dependents[d.0].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n_ops).filter(|&i| remaining_deps[i] == 0).collect();
    let mut scheduled = 0usize;
    let zero = Ratio::zero();

    while !ready.is_empty() {
        // Earliest-start-time greedy choice (ties broken by op index for
        // determinism).
        let mut best: Option<(usize, Ratio)> = None;
        for &i in &ready {
            let op = &dag.ops()[i];
            let dep_ready: Ratio = op
                .deps
                .iter()
                .map(|d| finish[d.0].clone().expect("dependency finished"))
                .max()
                .unwrap_or_else(Ratio::zero);
            let resource_ready = match &op.kind {
                OpKind::Transfer { from, to, .. } => {
                    let s = send_free.get(from).unwrap_or(&zero);
                    let r = recv_free.get(to).unwrap_or(&zero);
                    if s >= r {
                        s.clone()
                    } else {
                        r.clone()
                    }
                }
                OpKind::Compute { node, .. } => compute_free.get(node).unwrap_or(&zero).clone(),
                OpKind::Milestone => Ratio::zero(),
            };
            let start = dep_ready.max(resource_ready);
            match &best {
                None => best = Some((i, start)),
                Some((bi, bs)) => {
                    if start < *bs || (start == *bs && i < *bi) {
                        best = Some((i, start));
                    }
                }
            }
        }
        let (idx, start) = best.expect("ready list is non-empty");
        ready.retain(|&i| i != idx);
        let op = &dag.ops()[idx];
        let end = match &op.kind {
            OpKind::Transfer { from, to, duration } => {
                let end = &start + duration;
                send_free.insert(*from, end.clone());
                recv_free.insert(*to, end.clone());
                end
            }
            OpKind::Compute { node, duration } => {
                let end = &start + duration;
                compute_free.insert(*node, end.clone());
                end
            }
            OpKind::Milestone => start.clone(),
        };
        finish[idx] = Some(end);
        scheduled += 1;
        for &dep in &dependents[idx] {
            remaining_deps[dep] -= 1;
            if remaining_deps[dep] == 0 {
                ready.push(dep);
            }
        }
    }

    if scheduled != n_ops {
        return Err(SimError::CyclicDependencies);
    }
    let finish_times: Vec<Ratio> = finish.into_iter().map(|f| f.unwrap()).collect();
    let makespan = finish_times.iter().cloned().max().unwrap_or_else(Ratio::zero);
    Ok(SimResult { finish_times, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators;
    use steady_rational::rat;

    #[test]
    fn empty_dag() {
        let (p, _) = generators::chain(2, rat(1, 1));
        let res = simulate(&p, &Dag::new()).unwrap();
        assert_eq!(res.makespan, Ratio::zero());
    }

    #[test]
    fn sequential_transfers_on_same_port() {
        // Two transfers out of the same node serialize on its send port.
        let (p, c, leaves) = generators::star(2, rat(1, 1));
        let mut dag = Dag::new();
        let a = dag.transfer(c, leaves[0], rat(2, 1), vec![]);
        let b = dag.transfer(c, leaves[1], rat(3, 1), vec![]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(res.makespan, rat(5, 1));
        assert!(res.finish(a) < res.finish(b) || res.finish(b) < res.finish(a));
    }

    #[test]
    fn independent_transfers_overlap() {
        // Different senders and receivers: fully parallel.
        let (p, nodes) = generators::clique(4, rat(1, 1));
        let mut dag = Dag::new();
        dag.transfer(nodes[0], nodes[1], rat(2, 1), vec![]);
        dag.transfer(nodes[2], nodes[3], rat(2, 1), vec![]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(res.makespan, rat(2, 1));
    }

    #[test]
    fn computation_overlaps_with_communication() {
        // Full-overlap: a node can compute while sending.
        let (p, nodes) = generators::chain(2, rat(1, 1));
        let mut dag = Dag::new();
        dag.transfer(nodes[0], nodes[1], rat(5, 1), vec![]);
        dag.compute(nodes[0], rat(5, 1), vec![]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(res.makespan, rat(5, 1));
    }

    #[test]
    fn dependencies_are_respected() {
        // A store-and-forward relay: second hop starts after the first.
        let (p, nodes) = generators::chain(3, rat(1, 1));
        let mut dag = Dag::new();
        let first = dag.transfer(nodes[0], nodes[1], rat(1, 1), vec![]);
        let second = dag.transfer(nodes[1], nodes[2], rat(1, 1), vec![first]);
        let done = dag.milestone(vec![second]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(*res.finish(done), rat(2, 1));
        assert_eq!(res.makespan, rat(2, 1));
    }

    #[test]
    fn recv_port_is_exclusive() {
        // Two different senders to the same receiver serialize on its recv port.
        let (p, nodes) = generators::clique(3, rat(1, 1));
        let mut dag = Dag::new();
        dag.transfer(nodes[1], nodes[0], rat(2, 1), vec![]);
        dag.transfer(nodes[2], nodes[0], rat(2, 1), vec![]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(res.makespan, rat(4, 1));
    }

    #[test]
    fn errors_are_reported() {
        let (p, nodes) = generators::chain(3, rat(1, 1));
        // Missing link: 0 -> 2 is two hops.
        let mut dag = Dag::new();
        dag.transfer(nodes[0], nodes[2], rat(1, 1), vec![]);
        assert_eq!(
            simulate(&p, &dag).unwrap_err(),
            SimError::MissingLink { from: nodes[0], to: nodes[2] }
        );
        // Unknown node.
        let mut dag = Dag::new();
        dag.compute(NodeId(99), rat(1, 1), vec![]);
        assert!(matches!(simulate(&p, &dag).unwrap_err(), SimError::UnknownNode { .. }));
        // Negative duration.
        let mut dag = Dag::new();
        dag.compute(nodes[0], rat(-1, 1), vec![]);
        assert_eq!(simulate(&p, &dag).unwrap_err(), SimError::NegativeDuration);
        // Cycle.
        let mut dag = Dag::new();
        let a = dag.add(OpKind::Milestone, vec![OpId(1)]);
        let _b = dag.add(OpKind::Milestone, vec![a]);
        assert_eq!(simulate(&p, &dag).unwrap_err(), SimError::CyclicDependencies);
    }

    #[test]
    fn pipelining_two_operations_shares_resources() {
        // Two identical "operations" (transfer then forward) pipeline: the
        // second starts while the first is on its second hop.
        let (p, nodes) = generators::chain(3, rat(1, 1));
        let mut dag = Dag::new();
        let a1 = dag.transfer(nodes[0], nodes[1], rat(1, 1), vec![]);
        let a2 = dag.transfer(nodes[1], nodes[2], rat(1, 1), vec![a1]);
        let b1 = dag.transfer(nodes[0], nodes[1], rat(1, 1), vec![]);
        let b2 = dag.transfer(nodes[1], nodes[2], rat(1, 1), vec![b1]);
        let res = simulate(&p, &dag).unwrap();
        assert_eq!(res.makespan, rat(3, 1));
        let _ = (a2, b2);
    }
}
