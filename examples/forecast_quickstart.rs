//! Predicting the drift before it happens: `steady-forecast` plus the
//! service's idle-time prefetch loop.
//!
//! The Figure 2 platform's link costs follow an aggressive bounded random
//! walk (every edge moves every step, on a coarse grid).  Figure 2 has two
//! competing routes towards target `P0`, so cost drift flips the optimal
//! routing — the cached simplex basis is about to be *exited*.  The
//! forecaster enumerates the exact one-step drift envelope, certifies each
//! reachable platform with a zero-pivot survival probe, predicts the exits,
//! and hands the service a ranked presolve plan.  Idle workers solve the
//! predictions; when the drift then actually happens, the query lands as a
//! pure cache hit — bit-identical to a cold solve that never ran on the
//! critical path.
//!
//! Run with `cargo run --release --example forecast_quickstart`.

use std::time::Duration;

use steady_collectives::prelude::*;

fn main() {
    // An aggressive walk on the paper's Figure 2 platform: a coarse grid
    // (steps of 1/2) and no laziness — the next platform is guaranteed to
    // differ, and route costs move far enough to exit the basis.
    let instance = figure2();
    let (source, targets) = (instance.source, instance.targets.clone());
    let config = DriftConfig { grid: 2, min_num: 1, max_num: 4, move_probability: 1.0 };
    let mut model = DriftModel::new(instance.platform, config, 2024);

    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let to_query = |platform: Platform| Query {
        platform,
        collective: Collective::Scatter { source, targets: targets.clone() },
    };

    // 1. Demand-solve the current platform once: the service caches the
    //    answer and publishes the structural class's optimal basis.
    let base = service.query(to_query(model.current())).expect("base platform solves");
    println!("=== Speculative pre-solving on a drifting Figure 2 platform ===");
    println!("base solve     : TP = {}  (served via {:?})", base.answer.throughput, base.via);
    let class = to_query(model.current()).structural_fingerprint().0;
    let basis = service.class_basis(class).expect("the demand solve published its basis");

    // 2. Forecast the one-step envelope and classify the class's fate.
    let forecaster =
        Forecaster::new(ForecastConfig { horizon: 1, max_candidates: 32, max_states: 1 << 12 });
    let plan = forecaster
        .forecast(&model, |p| ScatterProblem::new(p, source, targets.clone()), &basis)
        .expect("forecast");
    println!(
        "forecast       : fate {} — {} states examined ({} survive, {} exit, exhaustive: {})",
        plan.fate.name(),
        plan.examined,
        plan.surviving,
        plan.exiting,
        plan.exhaustive,
    );
    let exits = plan.predicted_exits();
    println!(
        "presolve plan  : {} candidates, {exits} predicted exits; likeliest p = {:.3}",
        plan.candidates.len(),
        plan.candidates.first().map_or(0.0, |c| c.probability),
    );

    // 3. Hand the plan to the service: idle workers pre-solve every
    //    candidate through the ordinary triage ladder.
    let jobs: Vec<PrefetchJob> = plan
        .candidates
        .iter()
        .map(|candidate| PrefetchJob {
            query: to_query(candidate.platform.clone()),
            predicted_exit: candidate.expected == PredictedTriage::Repair,
        })
        .collect();
    let scheduled = service.schedule_prefetch(jobs);
    assert!(service.await_prefetch_idle(Duration::from_secs(60)), "prefetch backlog drained");
    println!("prefetched     : {scheduled} scheduled, {} pre-solved", service.stats().prefetched);

    // 4. The drift happens.  An exhaustive one-step plan contains it by
    //    construction, so the query is a pure cache hit — and exact.
    let drifted = to_query(model.step());
    let served = service.query(drifted.clone()).expect("drifted platform solves");
    let cold = solve_query_cold(&drifted);
    println!(
        "drifted query  : TP = {}  (served via {:?}, {})",
        served.answer.throughput,
        served.via,
        if served.via == ServedVia::Cache { "prediction landed" } else { "prediction missed" },
    );
    assert_eq!(served.answer.throughput, cold, "prefetched answers are bit-identical");

    let stats = service.stats();
    println!(
        "counters       : {} prefetched, {} prefetch hits, {} wasted, {} predicted exits",
        stats.prefetched, stats.prefetch_hits, stats.prefetch_wasted, stats.predicted_exits,
    );
    println!(
        "hit fraction   : {:.0}% of fresh demand answered before it was asked",
        stats.prefetch_hit_fraction() * 100.0,
    );
}

/// An independent from-scratch solve of the same query (no cache, no warm
/// start) — the reference every speculative answer must equal exactly.
fn solve_query_cold(query: &Query) -> Ratio {
    let Collective::Scatter { source, targets } = &query.collective else {
        unreachable!("this example only issues scatter queries");
    };
    let problem = ScatterProblem::new(query.platform.clone(), *source, targets.clone())
        .expect("valid scatter");
    problem.solve().expect("cold solve").throughput().clone()
}
