//! Domain scenario: a periodic personalized all-to-all (gossip).
//!
//! A distributed join keeps re-partitioning data: every worker must send a
//! distinct bucket to every other worker, round after round.  We compute the
//! optimal steady-state exchange rate on a heterogeneous platform and show the
//! explicit periodic schedule for one period.
//!
//! Run with `cargo run --release --example gossip_exchange`.

use steady_collectives::prelude::*;
use steady_platform::generators;

fn main() {
    // Four workers around a switch with heterogeneous access links.
    let costs = [rat(1, 4), rat(1, 2), rat(1, 2), rat(1, 1)];
    let (platform, _switch, workers) = generators::heterogeneous_star(&costs);

    let problem = GossipProblem::new(platform, workers.clone(), workers.clone())
        .expect("valid gossip problem");
    let solution = problem.solve().expect("LP solves");
    solution.verify(&problem).expect("exact feasibility");

    println!("=== Personalized all-to-all (gossip) ===");
    println!("workers: {}", workers.len());
    println!("optimal steady-state rate TP = {} rounds per time-unit", solution.throughput());
    println!("minimal integer period T = {}", solution.period());

    let schedule = solution.build_schedule(&problem).expect("schedule");
    schedule.validate(problem.platform()).expect("one-port feasible");
    println!("\none period of the schedule:\n{}", schedule.render(problem.platform()));

    // Compare with a clique of the same size but uniform links.
    let (clique, nodes) = generators::clique(4, rat(1, 2));
    let uniform = GossipProblem::new(clique, nodes.clone(), nodes).expect("valid");
    let usol = uniform.solve().expect("LP solves");
    println!("for reference, a uniform 4-clique with cost 1/2 achieves TP = {}", usol.throughput());
}
