//! MPI-style execution check: run the optimal periodic schedules with real
//! threads, real messages and a non-commutative reduction operator, and verify
//! the delivered data end to end.
//!
//! The LP and the matching decomposition guarantee one-port feasibility and
//! optimal throughput; this example uses `steady-runtime` to confirm that the
//! schedules also *work as programs*: every scatter message reaches its
//! addressee and every reduce result is the ordered concatenation
//! `v_0 ⊕ v_1 ⊕ … ⊕ v_N` of a single operation's contributions, even though
//! the steady state splits operations across several reduction trees.
//!
//! Run with `cargo run --release --example mpi_emulation`.

use steady_collectives::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Scatter: Figure 2 platform, 40 production periods.
    // ------------------------------------------------------------------
    let scatter = ScatterProblem::from_instance(figure2()).expect("valid instance");
    let ssol = scatter.solve().expect("LP solves");
    let sschedule = ssol.build_schedule(&scatter).expect("schedule construction");
    let config = RunConfig { production_periods: 40, drain_periods: 10 };
    let report = run_scatter(&scatter, &sschedule, config).expect("threaded run");
    println!("=== Threaded scatter run (Figure 2) ===");
    println!(
        "periods executed     : {} ({} production)",
        report.periods, config.production_periods
    );
    println!("operations injected  : {}", config.production_periods * report.operations_per_period);
    println!("operations completed : {}", report.completed_operations);
    println!("messages delivered   : {}", report.messages_delivered);
    println!("data-level errors    : {}", report.errors.len());
    assert!(report.errors.is_empty());

    // ------------------------------------------------------------------
    // Reduce: Figure 6 platform with its two reduction trees.
    // ------------------------------------------------------------------
    let reduce = ReduceProblem::from_instance(figure6()).expect("valid instance");
    let rsol = reduce.solve().expect("LP solves");
    let trees = rsol.extract_trees(&reduce).expect("tree extraction");
    let config = RunConfig { production_periods: 30, drain_periods: 15 };
    let report = run_reduce(&reduce, &trees, config).expect("threaded run");
    println!("\n=== Threaded reduce run (Figure 6) ===");
    println!("reduction trees      : {}", trees.len());
    println!("operations injected  : {}", config.production_periods * report.operations_per_period);
    println!("results delivered    : {}", report.completed_operations);
    println!("results correct      : {}", report.correct_results);
    println!("data-level errors    : {}", report.errors.len());
    assert_eq!(report.correct_results, report.completed_operations);
    assert!(report.errors.is_empty());

    println!("\nall delivered reductions are the ordered, single-time-stamp concatenation");
    println!("of every participant's contribution — the non-commutative operator is safe.");
}
