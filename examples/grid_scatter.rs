//! Domain scenario: distributing work units from a head node across a
//! cluster-of-clusters (2-D grid of compute nodes plus a heterogeneous access
//! star), comparing the steady-state schedule against the direct
//! shortest-path scatter baseline.
//!
//! Run with `cargo run --release --example grid_scatter`.

use steady_collectives::prelude::*;
use steady_platform::generators;

fn main() {
    println!("=== Steady-state scatter vs direct scatter ===\n");
    println!("{:<28} {:>12} {:>12} {:>8}", "platform", "steady TP", "baseline", "gain");

    // A 3x3 grid: the head node is a corner, every other node is a target.
    let (grid, ids) = generators::grid(3, 3, rat(1, 1));
    let source = ids[0][0];
    let targets: Vec<NodeId> = grid.node_ids().filter(|&n| n != source).collect();
    report_one("grid 3x3 (unit links)", grid, source, targets);

    // A heterogeneous star: leaves with increasingly slow links.
    let costs: Vec<Ratio> = (1..=6).map(|i| rat(i, 3)).collect();
    let (star, center, leaves) = generators::heterogeneous_star(&costs);
    report_one("heterogeneous star (6 leaves)", star, center, leaves);

    // A random Tiers platform: the fastest host scatters to all other hosts.
    let inst = tiers_scatter_instance(&TiersConfig::default(), 42);
    report_one("tiers (seed 42)", inst.platform, inst.source, inst.targets);
}

fn report_one(name: &str, platform: Platform, source: NodeId, targets: Vec<NodeId>) {
    let problem = ScatterProblem::new(platform, source, targets).expect("valid scatter problem");
    let solution = problem.solve().expect("LP solves");
    let schedule = solution.build_schedule(&problem).expect("schedule");
    schedule.validate(problem.platform()).expect("feasible schedule");

    let ops = 30;
    let baseline =
        measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, ops), ops)
            .expect("baseline simulation");

    let steady = solution.throughput().to_f64();
    let base = baseline.throughput.to_f64();
    println!(
        "{:<28} {:>12.4} {:>12.4} {:>7.2}x",
        name,
        steady,
        base,
        if base > 0.0 { steady / base } else { f64::INFINITY }
    );
}
