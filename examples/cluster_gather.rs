//! Cluster telemetry gather: many hosts across two sites stream measurements
//! towards one collector, and the inter-site bridge is the scarce resource.
//!
//! The scenario exercises the Series-of-Gathers machinery (the dual of the
//! paper's Series of Scatters): the steady-state LP chooses how much of each
//! host's stream crosses the bridge directly and how much is relayed through
//! peers, then the weighted-matching decomposition produces the periodic
//! communication plan.  The LP optimum is compared against the naive
//! "everyone sends straight to the collector" baseline and cross-checked
//! through the scatter problem on the transposed platform (gather/scatter
//! duality).
//!
//! Run with `cargo run --release --example cluster_gather`.

use steady_collectives::prelude::*;

fn main() {
    // Two sites with 3 hosts each; cheap local links (1/4), an expensive
    // bridge (1).  The collector is the first host of the left site.
    let instance = dumbbell_gather_instance(3, rat(1, 4), rat(1, 1));
    let problem = GatherProblem::from_instance(instance).expect("valid gather instance");

    println!("=== Cluster telemetry gather (dumbbell platform) ===");
    println!(
        "{} sources -> sink {}, platform: {} nodes / {} edges",
        problem.sources().len(),
        problem.sink(),
        problem.platform().num_nodes(),
        problem.platform().num_edges()
    );

    let solution = problem.solve().expect("LP solves");
    solution.verify(&problem).expect("solution verifies");
    println!("optimal steady-state throughput TP = {}", solution.throughput());
    println!("minimal integer period T = {}", solution.period());

    // Duality cross-check: scatter on the transposed platform.
    let dual = problem.dual_scatter().expect("dual problem is valid");
    let dual_solution = dual.solve().expect("dual LP solves");
    println!("transpose-dual scatter throughput = {} (must match)", dual_solution.throughput());
    assert_eq!(solution.throughput(), dual_solution.throughput());

    // Explicit periodic schedule.
    let schedule = solution.build_schedule(&problem).expect("schedule construction");
    schedule.validate(problem.platform()).expect("one-port feasible");
    println!(
        "schedule: period {}, {} slots, {} operations per period",
        schedule.period,
        schedule.slots.len(),
        schedule.operations_per_period
    );

    // Naive baseline: every host ships directly along a shortest path.
    let ops = 30;
    let dag = direct_gather(&problem, ops);
    let baseline =
        measure_pipelined_throughput(problem.platform(), &dag, ops).expect("baseline simulation");
    println!(
        "direct-gather baseline: {} ops/time-unit (steady state wins by x{:.2})",
        baseline.throughput,
        (solution.throughput() / &baseline.throughput).to_f64()
    );
}
