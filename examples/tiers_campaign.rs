//! Reproduction of the paper's experiment (§4.7, Figures 9–12): a series of
//! reduces on a Tiers-generated 14-node hierarchical platform with 8
//! participating LAN hosts, message size 10 and task cost 10.
//!
//! The exact link costs of Figure 9 cannot be recovered from the published
//! figure, so the platform returned by `figure9()` uses the published node
//! speeds and hierarchy with representative link costs (see DESIGN.md); the
//! printed throughput and reduction trees are the measured counterparts of
//! the paper's TP = 2/9 and the two trees of Figures 11–12.
//!
//! Run with `cargo run --release --example tiers_campaign`.

use std::time::Instant;

use steady_collectives::prelude::*;

fn main() {
    // The full 8-participant LP is large and heavily degenerate (several
    // minutes of solve time); by default the campaign keeps the first 6
    // participants (the target, logical index 4, is among them).  Pass
    // `--full` (or set STEADY_FULL_FIG9=1) to run the complete instance.
    let full = std::env::args().any(|a| a == "--full") || std::env::var("STEADY_FULL_FIG9").is_ok();
    let mut instance = figure9();
    if !full {
        instance.participants.truncate(6);
        println!("(running with 6 of the 8 participants; pass --full for the complete instance)");
    }
    println!("=== Tiers platform (Figure 9-like) ===");
    println!(
        "{} nodes, {} directed links, {} participants, target {}",
        instance.platform.num_nodes(),
        instance.platform.num_edges(),
        instance.participants.len(),
        instance.platform.node(instance.target).name
    );
    for (i, &p) in instance.participants.iter().enumerate() {
        let node = instance.platform.node(p);
        println!("  participant {i}: {} (speed {})", node.name, node.speed);
    }

    let problem = ReduceProblem::from_instance(instance).expect("valid instance");
    let start = Instant::now();
    let solution = problem.solve().expect("LP solves");
    let solve_time = start.elapsed();
    println!(
        "\noptimal steady-state throughput TP = {}  (~{:.4} reduces per time-unit)",
        solution.throughput(),
        solution.throughput().to_f64()
    );
    println!("LP solved in {solve_time:.2?}");
    solution.verify(&problem).expect("solution verifies exactly");

    // Port and compute occupations of the participating hosts (Figure 10 gives
    // the per-link transfer rates; we summarize per node).
    println!("\nper-node occupations (fraction of each time-unit):");
    for &node in problem.participants() {
        println!(
            "  {:>7}: send {:>8}  recv {:>8}  compute {:>8}",
            problem.platform().node(node).name,
            format!("{:.3}", solution.send_occupation(&problem, node).to_f64()),
            format!("{:.3}", solution.recv_occupation(&problem, node).to_f64()),
            format!("{:.3}", solution.compute_occupation(&problem, node).to_f64()),
        );
    }

    // Reduction trees (Figures 11 and 12 in the paper).
    let start = Instant::now();
    let trees = solution.extract_trees(&problem).expect("tree extraction");
    println!("\nreduction trees extracted in {:.2?}:", start.elapsed());
    for (i, wt) in trees.iter().enumerate() {
        println!(
            "  tree {i}: weight {} ({} transfers, {} tasks)",
            wt.weight,
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        );
    }

    // Fixed-period approximation (Proposition 4).
    println!("\nfixed-period approximation (Proposition 4):");
    for t in [10i64, 100, 1000] {
        let plan = approximate_for_period(&trees, &rat(t, 1)).expect("positive period");
        println!(
            "  T_fixed = {t:>5}: throughput {} (loss bound {})",
            plan.throughput, plan.loss_bound
        );
    }

    // Compare against the classical baselines on the same platform.
    let ops = 20;
    let flat =
        measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, ops), ops)
            .expect("flat-tree baseline");
    let binomial =
        measure_pipelined_throughput(problem.platform(), &binomial_reduce(&problem, ops), ops)
            .expect("binomial baseline");
    println!("\nbaseline comparison (sustained throughput over {ops} pipelined operations):");
    println!("  steady-state optimum : {:.4}", solution.throughput().to_f64());
    println!("  flat-tree reduce     : {:.4}", flat.throughput.to_f64());
    println!("  binomial reduce      : {:.4}", binomial.throughput.to_f64());
}
