//! Quickstart: reproduce the two toy examples of the paper end-to-end.
//!
//! * Figure 2: a series of scatters on a 5-node platform — optimal throughput
//!   1/2 (one scatter every two time-units).
//! * Figure 6: a series of reduces on a 3-processor platform — optimal
//!   throughput 1 (one reduction per time-unit), realized by two reduction
//!   trees (Figure 7).
//!
//! Run with `cargo run --release --example quickstart`.

use steady_collectives::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Series of Scatters on the Figure 2 platform.
    // ------------------------------------------------------------------
    let scatter = ScatterProblem::from_instance(figure2()).expect("valid instance");
    let solution = scatter.solve().expect("LP solves");
    println!("=== Series of Scatters (Figure 2) ===");
    println!("optimal steady-state throughput TP = {}", solution.throughput());
    println!("minimal integer period T = {}", solution.period());

    let schedule = solution.build_schedule(&scatter).expect("schedule construction");
    schedule.validate(scatter.platform()).expect("one-port feasible");
    println!("\nperiodic schedule:\n{}", schedule.render(scatter.platform()));

    // Execute the schedule for 600 time-units with cold buffers and compare
    // with the Lemma-1 upper bound TP * K.
    let report = execute_scatter_schedule(&scatter, &schedule, solution.throughput(), &rat(600, 1));
    println!(
        "simulated 600 time-units: {} scatters completed (upper bound {}), efficiency {}",
        report.completed_operations,
        report.upper_bound,
        report.efficiency()
    );

    // ------------------------------------------------------------------
    // Series of Reduces on the Figure 6 platform.
    // ------------------------------------------------------------------
    let reduce = ReduceProblem::from_instance(figure6()).expect("valid instance");
    let rsol = reduce.solve().expect("LP solves");
    println!("\n=== Series of Reduces (Figure 6) ===");
    println!("optimal steady-state throughput TP = {}", rsol.throughput());

    let trees = rsol.extract_trees(&reduce).expect("tree extraction");
    println!("reduction trees ({}):", trees.len());
    for (i, wt) in trees.iter().enumerate() {
        println!(
            "  tree {i}: weight {}, {} transfers, {} tasks",
            wt.weight,
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        );
    }

    let schedule = rsol.build_schedule(&reduce).expect("schedule construction");
    schedule.validate(reduce.platform()).expect("one-port feasible");
    println!("\nperiodic schedule:\n{}", schedule.render(reduce.platform()));

    let report = execute_reduce_schedule(&reduce, &schedule, rsol.throughput(), &rat(300, 1));
    println!(
        "simulated 300 time-units: {} reductions completed (upper bound {}), efficiency {}",
        report.completed_operations,
        report.upper_bound,
        report.efficiency()
    );
}
