//! Serving throughput queries at scale: the `steady-service` engine.
//!
//! Starts a worker pool, asks for the Figure 2 scatter throughput three
//! times — cold, repeated, and *relabeled* (an isomorphic platform with
//! permuted node numbers) — and shows that only the first query pays for an
//! LP solve.  Then replays a repetition-heavy 500-query mix from four client
//! threads and prints the latency/throughput report.
//!
//! Run with `cargo run --release --example service_quickstart`.

use steady_collectives::prelude::*;
use steady_collectives::service::{permuted_platform, CacheConfig, LoadReport};

fn main() {
    let service = Service::start(ServiceConfig {
        workers: 4,
        cache: CacheConfig { capacity: 256, shards: 8 },
        build_schedules: true,
        ..ServiceConfig::default()
    });

    // ------------------------------------------------------------------
    // One query, three ways: cold, repeated, relabeled.
    // ------------------------------------------------------------------
    let instance = figure2();
    let query = Query {
        platform: instance.platform.clone(),
        collective: Collective::Scatter {
            source: instance.source,
            targets: instance.targets.clone(),
        },
    };

    let cold = service.query(query.clone()).expect("figure2 solves");
    println!("=== Figure 2 scatter through the service ===");
    println!("cold query    : TP = {}  (served via {:?})", cold.answer.throughput, cold.via);

    let repeat = service.query(query.clone()).expect("cached answer");
    println!("repeat query  : TP = {}  (served via {:?})", repeat.answer.throughput, repeat.via);

    // Renumber every node: P0..P4 become P1..P4,P0.  The platform is
    // isomorphic, so the canonical fingerprint — and the cache entry — match.
    let perm = [1, 2, 3, 4, 0];
    let relabeled = Query {
        platform: permuted_platform(&instance.platform, &perm),
        collective: Collective::Scatter {
            source: NodeId(perm[instance.source.index()]),
            targets: instance.targets.iter().map(|t| NodeId(perm[t.index()])).collect(),
        },
    };
    let iso = service.query(relabeled).expect("isomorphic answer");
    println!("relabeled     : TP = {}  (served via {:?})", iso.answer.throughput, iso.via);
    println!(
        "fingerprint   : {} (shared by all three)\nschedule      : {} slots per period",
        cold.answer.fingerprint,
        cold.answer.schedule.as_ref().map_or(0, |s| s.slots.len()),
    );

    // ------------------------------------------------------------------
    // A sustained load: 500 queries over a 12-query pool, 4 clients.
    // ------------------------------------------------------------------
    let report: LoadReport =
        run_load(&service, &LoadConfig { queries: 500, clients: 4, distinct: 12, seed: 42 })
            .expect("load run succeeds");
    println!("\n=== 500-query load run ===");
    print!("{}", report.render());
    println!("\nmachine-readable summary:\n{}", report.to_json());
}
