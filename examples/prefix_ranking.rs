//! Streaming parallel prefix: every compute node needs the running reduction
//! of all lower-ranked nodes' contributions (e.g. cumulative totals or a
//! rank-ordered merge), refreshed continuously.
//!
//! This exercises the parallel-prefix extension suggested in the paper's
//! conclusion: rank `i` must obtain `v[0, i]` for every operation of the
//! series.  The example solves the shared-capacity prefix LP on a small
//! hypercube, brackets it with the single-rank reduce upper bound, prints the
//! per-rank reduction trees and builds the aggregated periodic schedule.
//!
//! Run with `cargo run --release --example prefix_ranking`.

use steady_collectives::prelude::*;

fn main() {
    // A 4-node hypercube (dimension 2) with unit link costs and unit task cost.
    let instance = hypercube_prefix_instance(2, rat(1, 1));
    let problem = PrefixProblem::from_instance(instance).expect("valid prefix instance");

    println!("=== Streaming parallel prefix on a hypercube ===");
    println!(
        "{} participants on {} nodes / {} edges",
        problem.participants().len(),
        problem.platform().num_nodes(),
        problem.platform().num_edges()
    );

    let solution = problem.solve().expect("LP solves");
    solution.verify(&problem).expect("solution verifies");
    let upper = problem.upper_bound().expect("upper bound computes");
    println!("achieved steady-state throughput = {}", solution.throughput());
    println!("single-rank reduce upper bound   = {upper}");

    // Per-rank reduction trees.
    let trees = solution.extract_trees(&problem).expect("tree extraction");
    for (rank, rank_trees) in &trees {
        let total: Ratio = rank_trees.iter().map(|t| t.weight.clone()).sum();
        println!("rank {rank}: {} tree(s), total weight {} (= TP)", rank_trees.len(), total);
        for (i, wt) in rank_trees.iter().enumerate() {
            println!(
                "  tree {i}: weight {}, {} transfers, {} tasks",
                wt.weight,
                wt.tree.num_transfers(),
                wt.tree.num_tasks()
            );
        }
    }

    // Aggregated one-port-feasible schedule.
    let schedule = solution.build_schedule(&problem).expect("schedule construction");
    schedule.validate(problem.platform()).expect("one-port feasible");
    println!(
        "schedule: period {}, {} communication slots, {} distinct computation entries",
        schedule.period,
        schedule.slots.len(),
        schedule.computations.len()
    );

    // Compare against running the N independent reduces at the bottleneck rate.
    println!(
        "note: the LP shares link and CPU capacity across ranks; a naive 'run every\n\
         rank's reduce at full speed' plan would need {}x the port capacity.",
        problem.participants().len() - 1
    );
}
