//! Domain scenario: periodic aggregation of sensor readings.
//!
//! A hierarchical deployment (Tiers-like: site routers, gateway routers, and
//! heterogeneous edge boxes) keeps producing readings that must be reduced
//! with an order-sensitive operator (e.g. a time-ordered merge) into a single
//! archive node.  We maximize the sustained aggregation rate, extract the
//! reduction trees actually used, clamp the schedule to a practical period,
//! and compare against flat-tree and binomial-tree aggregation.
//!
//! Run with `cargo run --release --example sensor_reduce`.

use steady_collectives::prelude::*;

fn main() {
    // A small deployment: 2 sites, 1 gateway per site, 2 edge boxes per gateway.
    let config =
        TiersConfig { wan_routers: 2, man_per_wan: 1, lan_per_man: 2, ..TiersConfig::default() };
    let instance = tiers_reduce_instance(&config, 7);
    println!("=== Sensor aggregation campaign ===");
    println!(
        "{} nodes, {} participants, archive node = {}",
        instance.platform.num_nodes(),
        instance.participants.len(),
        instance.platform.node(instance.target).name
    );

    let problem = ReduceProblem::from_instance(instance).expect("valid problem");
    let solution = problem.solve().expect("LP solves");
    solution.verify(&problem).expect("exact feasibility");
    println!(
        "\noptimal aggregation rate TP = {} (~{:.4} per time-unit)",
        solution.throughput(),
        solution.throughput().to_f64()
    );

    let trees = solution.extract_trees(&problem).expect("trees");
    println!("aggregation uses {} reduction tree(s):", trees.len());
    for (i, wt) in trees.iter().enumerate() {
        println!(
            "  tree {i}: weight {}, {} transfers, {} combines",
            wt.weight,
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        );
    }

    // A practical controller wants a short period: clamp it and report the loss.
    println!("\nfixed-period plans:");
    for period in [5i64, 20, 100] {
        let (plan, schedule) =
            build_fixed_period_schedule(&problem, &solution, &trees, &rat(period, 1))
                .expect("fixed-period plan");
        schedule.validate(problem.platform()).expect("feasible");
        println!(
            "  period {period:>4}: rate {} (guaranteed loss <= {})",
            plan.throughput, plan.loss_bound
        );
    }

    // Dynamic check: run the exact-period schedule for a long horizon.
    let schedule = solution.build_schedule(&problem).expect("schedule");
    let report = execute_reduce_schedule(&problem, &schedule, solution.throughput(), &rat(2000, 1));
    println!(
        "\nsimulated 2000 time-units: {} aggregations ({} possible), efficiency {}",
        report.completed_operations,
        report.upper_bound,
        report.efficiency()
    );

    // Classical alternatives.
    let ops = 25;
    let flat =
        measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, ops), ops)
            .expect("flat tree");
    let bino =
        measure_pipelined_throughput(problem.platform(), &binomial_reduce(&problem, ops), ops)
            .expect("binomial tree");
    println!(
        "\nbaselines: flat-tree {:.4}, binomial {:.4}, steady-state {:.4}",
        flat.throughput.to_f64(),
        bino.throughput.to_f64(),
        solution.throughput().to_f64()
    );
}
