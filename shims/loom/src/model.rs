//! The exhaustive explorer: depth-first search over schedule prefixes.
//!
//! Each call to [`Builder::check`] runs the model closure under one schedule
//! at a time.  A schedule is the sequence of scheduling decisions recorded by
//! the runtime (the private `rt` module); after each run the explorer rewinds to
//! the last decision with an unexplored alternative, bumps it, and replays —
//! classic DFS over the prefix tree of schedules, exactly enumerating every
//! interleaving reachable within the preemption bound.

use std::sync::Arc;

use crate::rt;

/// Summary of one exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct schedules (complete interleavings) explored.
    pub schedules: usize,
    /// Length of the longest decision sequence seen.
    pub max_decisions: usize,
}

/// Configures an exploration (mirrors `loom::model::Builder`).
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per schedule (a
    /// switch away from a thread that could have kept running).  Forced
    /// switches — the current thread blocked or finished — are free.  Small
    /// bounds explore the interleavings that find almost all real bugs while
    /// keeping the search finite; `usize::MAX` makes the search truly
    /// exhaustive.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exceeding it panics, flagging a model
    /// too big to check exhaustively rather than spinning forever.
    pub max_schedules: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { preemption_bound: 2, max_schedules: 500_000 }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Exhaustively explores `f` under every schedule within the bounds.
    ///
    /// # Panics
    ///
    /// Panics when any schedule fails — an assertion in `f` fired, a modeled
    /// thread panicked, or the model deadlocked — with the failing schedule's
    /// decision trace, or when the exploration exceeds
    /// [`Builder::max_schedules`].
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut replay: Vec<u32> = Vec::new();
        let mut schedules = 0usize;
        let mut max_decisions = 0usize;
        loop {
            let outcome = rt::run_once(Arc::clone(&f), replay.clone(), self.preemption_bound);
            schedules += 1;
            max_decisions = max_decisions.max(outcome.decisions.len());
            if let Some(message) = outcome.failure {
                panic!(
                    "loom model failed on schedule {schedules}: {message}\n\
                     failing schedule (decision indices): {:?}",
                    outcome.decisions.iter().map(|d| d.chosen).collect::<Vec<_>>()
                );
            }
            assert!(
                schedules <= self.max_schedules,
                "loom exploration exceeded {} schedules; shrink the model or raise max_schedules",
                self.max_schedules
            );
            // Rewind to the deepest decision with an unexplored alternative.
            let mut decisions = outcome.decisions;
            let mut advanced = false;
            while let Some(last) = decisions.pop() {
                if last.chosen + 1 < last.enabled {
                    decisions.push(rt::Decision { enabled: last.enabled, chosen: last.chosen + 1 });
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Report { schedules, max_decisions };
            }
            replay = decisions.iter().map(|d| d.chosen).collect();
        }
    }
}

/// Explores `f` under the default bounds (preemption bound 2).  See
/// [`Builder::check`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
