//! Modeled synchronization primitives.
//!
//! Each primitive mirrors the API surface of the real one the workspace
//! uses (`parking_lot` locks, `std`/`crossbeam` channels and atomics) but
//! routes every operation through the model scheduler, so the explorer can
//! enumerate the interleavings of lock acquisitions, sends, receives and
//! atomic accesses.
//!
//! Data is stored in ordinary `std` primitives; the model's admission
//! protocol guarantees exclusivity before the `std` lock is touched, so the
//! inner acquisition never blocks.  Atomics are explored at *interleaving*
//! granularity with sequentially consistent semantics — the `Ordering`
//! argument is accepted for API parity but weak-memory reorderings are not
//! modeled (the checker verifies protocol logic, not fence placement).

use std::collections::VecDeque;
use std::sync::OnceLock;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::rt::{self, Blocker, Object, ObjectId, OpOutcome};

fn poisonless<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A modeled mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: StdMutex<T>,
    id: OnceLock<ObjectId>,
}

/// Guard for a [`Mutex`]; releases the modeled lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    // `Option` so drop can release the std guard before the modeled state.
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new modeled mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { data: StdMutex::new(value), id: OnceLock::new() }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        poisonless(self.data.into_inner())
    }

    pub(crate) fn oid(&self) -> ObjectId {
        *self.id.get_or_init(|| {
            let (exec, _) = rt::require_current();
            exec.register_object(Object::Mutex { owner: None })
        })
    }

    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let oid = self.oid();
        let (exec, tid) = rt::require_current();
        exec.op(tid, |s| match s.object(oid) {
            Object::Mutex { owner } => match owner {
                None => {
                    *owner = Some(tid);
                    OpOutcome::Ready(())
                }
                Some(_) => OpOutcome::Block(Blocker::Lock(oid)),
            },
            _ => unreachable!("object {oid} is not a mutex"),
        });
        let Ok(inner) = self.data.try_lock() else {
            unreachable!("modeled mutex admission is exclusive")
        };
        MutexGuard { lock: self, inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let oid = self.oid();
        let (exec, tid) = rt::require_current();
        let taken = exec.op(tid, |s| match s.object(oid) {
            Object::Mutex { owner } => OpOutcome::Ready(match owner {
                None => {
                    *owner = Some(tid);
                    true
                }
                Some(_) => false,
            }),
            _ => unreachable!("object {oid} is not a mutex"),
        });
        taken.then(|| {
            let Ok(inner) = self.data.try_lock() else {
                unreachable!("modeled mutex admission is exclusive")
            };
            MutexGuard { lock: self, inner: Some(inner) }
        })
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        poisonless(self.data.get_mut())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard before publishing the modeled release so the
        // next modeled owner's `try_lock` cannot fail.  Runs `silent` (no
        // decision, never panics): guard drops can happen during unwinding.
        self.inner = None;
        if let Some((exec, _)) = rt::current() {
            let oid = self.lock.oid();
            exec.silent(|s| {
                if let Object::Mutex { owner } = s.object(oid) {
                    *owner = None;
                }
                s.wake(|b| b == Blocker::Lock(oid));
            });
        }
    }
}

/// A modeled reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    data: StdRwLock<T>,
    id: OnceLock<ObjectId>,
}

/// Shared guard for an [`RwLock`].
pub struct RwLockGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<RwLockReadGuard<'a, T>>,
}

/// Exclusive guard for an [`RwLock`].
pub struct RwLockWriteGuardM<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new modeled lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { data: StdRwLock::new(value), id: OnceLock::new() }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        poisonless(self.data.into_inner())
    }

    fn oid(&self) -> ObjectId {
        *self.id.get_or_init(|| {
            let (exec, _) = rt::require_current();
            exec.register_object(Object::Rw { writer: None, readers: 0 })
        })
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockGuard<'_, T> {
        let oid = self.oid();
        let (exec, tid) = rt::require_current();
        exec.op(tid, |s| match s.object(oid) {
            Object::Rw { writer, readers } => match writer {
                None => {
                    *readers += 1;
                    OpOutcome::Ready(())
                }
                Some(_) => OpOutcome::Block(Blocker::Lock(oid)),
            },
            _ => unreachable!("object {oid} is not a rwlock"),
        });
        let Ok(inner) = self.data.try_read() else {
            unreachable!("modeled rwlock admission is consistent")
        };
        RwLockGuard { lock: self, inner: Some(inner) }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuardM<'_, T> {
        let oid = self.oid();
        let (exec, tid) = rt::require_current();
        exec.op(tid, |s| match s.object(oid) {
            Object::Rw { writer, readers } => {
                if writer.is_none() && *readers == 0 {
                    *writer = Some(tid);
                    OpOutcome::Ready(())
                } else {
                    OpOutcome::Block(Blocker::Lock(oid))
                }
            }
            _ => unreachable!("object {oid} is not a rwlock"),
        });
        let Ok(inner) = self.data.try_write() else {
            unreachable!("modeled rwlock admission is exclusive")
        };
        RwLockWriteGuardM { lock: self, inner: Some(inner) }
    }
}

impl<T> std::ops::Deref for RwLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is live")
    }
}

impl<T> Drop for RwLockGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((exec, _)) = rt::current() {
            let oid = self.lock.oid();
            exec.silent(|s| {
                if let Object::Rw { readers, .. } = s.object(oid) {
                    *readers -= 1;
                }
                s.wake(|b| b == Blocker::Lock(oid));
            });
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuardM<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is live")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuardM<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is live")
    }
}

impl<T> Drop for RwLockWriteGuardM<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((exec, _)) = rt::current() {
            let oid = self.lock.oid();
            exec.silent(|s| {
                if let Object::Rw { writer, .. } = s.object(oid) {
                    *writer = None;
                }
                s.wake(|b| b == Blocker::Lock(oid));
            });
        }
    }
}

/// A modeled condition variable paired with [`Mutex`].
///
/// `notify_one` wakes the longest-waiting thread (FIFO) — a determinism the
/// real primitive does not promise; schedules still explore every order in
/// which woken threads reacquire the mutex.
#[derive(Debug, Default)]
pub struct Condvar {
    id: OnceLock<ObjectId>,
}

impl Condvar {
    /// Creates a new modeled condvar.
    pub const fn new() -> Self {
        Condvar { id: OnceLock::new() }
    }

    fn oid(&self) -> ObjectId {
        *self.id.get_or_init(|| {
            let (exec, _) = rt::require_current();
            exec.register_object(Object::Cond {
                waiters: VecDeque::new(),
                notified: std::collections::HashSet::new(),
            })
        })
    }

    /// Atomically releases the guard's mutex and waits for a notification,
    /// then reacquires the mutex and returns a fresh guard.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let coid = self.oid();
        let (exec, tid) = rt::require_current();
        let mutex = guard.lock;
        let moid = mutex.oid();
        // Release the real guard first so the next modeled owner can take
        // the std lock, then release the modeled mutex AND enqueue as a
        // condvar waiter in one op — a notify between release and enqueue
        // would otherwise be lost, a hazard the real primitive excludes.
        guard.inner = None;
        exec.op(tid, |s| {
            if let Object::Mutex { owner } = s.object(moid) {
                *owner = None;
            }
            s.wake(|b| b == Blocker::Lock(moid));
            if let Object::Cond { waiters, .. } = s.object(coid) {
                if !waiters.contains(&tid) {
                    waiters.push_back(tid);
                }
            }
            OpOutcome::Ready(())
        });
        // The guard's drop re-runs the (idempotent) release without a
        // scheduling decision; no other thread has run in between.
        drop(guard);
        exec.op(tid, |s| {
            if let Object::Cond { notified, .. } = s.object(coid) {
                if notified.remove(&tid) {
                    return OpOutcome::Ready(());
                }
            }
            OpOutcome::Block(Blocker::CondWait(coid))
        });
        mutex.lock()
    }

    /// [`Self::wait`] with an upper bound on the wait — the modeled sibling
    /// of `parking_lot`'s timed wait, returning `(guard, timed_out)`.
    ///
    /// The model has no clock, so the "timeout" elapses immediately: the
    /// mutex is released (a scheduling point other threads can run through)
    /// and reacquired, and the call reports `timed_out = true`.  This is the
    /// same contract as the channel shim's `recv_timeout`: timed waits are
    /// treated as polling loops, which the callers that use them are.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let mutex = guard.lock;
        // Release (its own modeled op), let any schedule interleave, then
        // reacquire; the caller re-checks its predicate exactly as it would
        // after a real timeout.
        drop(guard);
        (mutex.lock(), true)
    }

    /// Notifies the longest-waiting thread, if any.
    pub fn notify_one(&self) {
        let coid = self.oid();
        let (exec, tid) = rt::require_current();
        exec.op(tid, |s| {
            if let Object::Cond { waiters, notified } = s.object(coid) {
                if let Some(w) = waiters.pop_front() {
                    notified.insert(w);
                    s.wake(|b| b == Blocker::CondWait(coid));
                }
            }
            OpOutcome::Ready(())
        });
    }

    /// Notifies every waiting thread.
    pub fn notify_all(&self) {
        let coid = self.oid();
        let (exec, tid) = rt::require_current();
        exec.op(tid, |s| {
            if let Object::Cond { waiters, notified } = s.object(coid) {
                while let Some(w) = waiters.pop_front() {
                    notified.insert(w);
                }
                s.wake(|b| b == Blocker::CondWait(coid));
            }
            OpOutcome::Ready(())
        });
    }
}

/// Modeled atomics: sequentially consistent interleaving exploration.
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::OnceLock;

    use crate::rt::{self, Object, ObjectId, OpOutcome};

    macro_rules! modeled_atomic {
        ($name:ident, $ty:ty) => {
            /// A modeled atomic integer; the `Ordering` argument is accepted
            /// for API parity and explored as sequentially consistent.
            #[derive(Debug, Default)]
            pub struct $name {
                init: $ty,
                id: OnceLock<ObjectId>,
            }

            impl $name {
                /// Creates a new modeled atomic with the given initial value.
                pub const fn new(value: $ty) -> Self {
                    $name { init: value, id: OnceLock::new() }
                }

                fn oid(&self) -> ObjectId {
                    *self.id.get_or_init(|| {
                        let (exec, _) = rt::require_current();
                        exec.register_object(Object::Atomic { value: self.init as u64 })
                    })
                }

                fn rmw(&self, f: impl Fn($ty) -> $ty) -> $ty {
                    let oid = self.oid();
                    let (exec, tid) = rt::require_current();
                    exec.op(tid, |s| match s.object(oid) {
                        Object::Atomic { value } => {
                            let old = *value as $ty;
                            *value = f(old) as u64;
                            OpOutcome::Ready(old)
                        }
                        _ => unreachable!("object {oid} is not an atomic"),
                    })
                }

                /// Atomically loads the value.
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.rmw(|v| v)
                }

                /// Atomically stores `value`.
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.rmw(|_| value);
                }

                /// Atomically adds, wrapping, returning the previous value.
                pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                    self.rmw(|v| v.wrapping_add(value))
                }

                /// Atomically subtracts, wrapping, returning the previous value.
                pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                    self.rmw(|v| v.wrapping_sub(value))
                }

                /// Atomically replaces the value, returning the previous one.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.rmw(|_| value)
                }

                /// Atomically stores `new` if the current value is `current`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let old = self.rmw(|v| if v == current { new } else { v });
                    if old == current {
                        Ok(old)
                    } else {
                        Err(old)
                    }
                }
            }
        };
    }

    modeled_atomic!(AtomicU64, u64);
    modeled_atomic!(AtomicUsize, usize);
    modeled_atomic!(AtomicU32, u32);

    /// A modeled atomic boolean (stored as 0/1).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: AtomicU64,
    }

    impl AtomicBool {
        /// Creates a new modeled atomic bool.
        pub const fn new(value: bool) -> Self {
            AtomicBool { inner: AtomicU64::new(value as u64) }
        }

        /// Atomically loads the value.
        pub fn load(&self, order: Ordering) -> bool {
            self.inner.load(order) != 0
        }

        /// Atomically stores `value`.
        pub fn store(&self, value: bool, order: Ordering) {
            self.inner.store(value as u64, order);
        }

        /// Atomically replaces the value, returning the previous one.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            self.inner.swap(value as u64, order) != 0
        }
    }
}

/// Modeled multi-producer channels with crossbeam's API shape.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};
    use std::time::Duration;

    use crate::rt::{self, Blocker, Object, ObjectId, OpOutcome};

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`]: the receiver is gone.  Carries
    /// the unsent message back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    struct ChanInner<T> {
        queue: VecDeque<T>,
        senders: usize,
        rx_alive: bool,
    }

    struct Chan<T> {
        inner: StdMutex<ChanInner<T>>,
        id: OnceLock<ObjectId>,
    }

    impl<T> Chan<T> {
        fn oid(&self) -> ObjectId {
            *self.id.get_or_init(|| {
                let (exec, _) = rt::require_current();
                exec.register_object(Object::Chan)
            })
        }

        fn with<R>(&self, f: impl FnOnce(&mut ChanInner<T>) -> R) -> R {
            f(&mut self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
        }
    }

    /// Sending half of a modeled channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of a modeled channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded modeled channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: StdMutex::new(ChanInner { queue: VecDeque::new(), senders: 1, rx_alive: true }),
            id: OnceLock::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.with(|inner| inner.senders += 1);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let disconnected = self.chan.with(|inner| {
                inner.senders -= 1;
                inner.senders == 0
            });
            // The last sender leaving is a wakeup event: blocked receivers
            // must observe the disconnect.  Never a decision point (drops
            // can run during unwinding).
            if disconnected {
                if let (Some((exec, _)), Some(&oid)) = (rt::current(), self.chan.id.get()) {
                    exec.silent(|s| s.wake(|b| b == Blocker::Recv(oid)));
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.with(|inner| inner.rx_alive = false);
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing (and handing it back) if the receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let oid = self.chan.oid();
            let (exec, tid) = rt::require_current();
            let mut slot = Some(value);
            exec.op(tid, |s| {
                let value = slot.take().expect("send attempts exactly once");
                let sent = self.chan.with(|inner| {
                    if inner.rx_alive {
                        inner.queue.push_back(value);
                        Ok(())
                    } else {
                        Err(SendError(value))
                    }
                });
                if sent.is_ok() {
                    s.wake(|b| b == Blocker::Recv(oid));
                }
                OpOutcome::Ready(sent)
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks (in model time) until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let oid = self.chan.oid();
            let (exec, tid) = rt::require_current();
            exec.op(tid, |_| {
                self.chan.with(|inner| match inner.queue.pop_front() {
                    Some(v) => OpOutcome::Ready(Ok(v)),
                    None if inner.senders == 0 => OpOutcome::Ready(Err(RecvError)),
                    None => OpOutcome::Block(Blocker::Recv(oid)),
                })
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let (exec, tid) = rt::require_current();
            exec.op(tid, |_| {
                OpOutcome::Ready(self.chan.with(|inner| match inner.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                }))
            })
        }

        /// Timed receive.  Model time has no clocks, so an empty, connected
        /// channel times out *immediately* — the schedule where the timeout
        /// fires before any sender runs.  The contract shared with the
        /// `crossbeam` shim (see its conformance suite): a queued message is
        /// always delivered, even when every sender is already gone or the
        /// timeout is zero; `Disconnected` is reported only on an empty,
        /// sender-less channel.
        pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
            let (exec, tid) = rt::require_current();
            exec.op(tid, |_| {
                OpOutcome::Ready(self.chan.with(|inner| match inner.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if inner.senders == 0 => Err(RecvTimeoutError::Disconnected),
                    None => Err(RecvTimeoutError::Timeout),
                }))
            })
        }
    }
}
