//! Modeled threads: spawn/join with the scheduler in the loop.

use std::sync::{Arc, Mutex};

use crate::rt::{self, OpOutcome, ThreadId};

/// Handle to a modeled thread, joinable like `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: ThreadId,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(tid: ThreadId, result: Arc<Mutex<Option<T>>>) -> Self {
        JoinHandle { tid, result }
    }

    /// Blocks (in model time) until the thread finishes, returning its
    /// result.  A panicking modeled thread fails the whole schedule before
    /// `join` can observe it, so — unlike `std` — the error arm only reports
    /// that the value is missing.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let (exec, me) = rt::require_current();
        let tid = self.tid;
        exec.op(me, |s| {
            if s.thread_finished(tid) {
                OpOutcome::Ready(())
            } else {
                OpOutcome::Block(rt::Blocker::Join(tid))
            }
        });
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .ok_or_else(|| Box::new("modeled thread produced no value") as Box<_>)
    }
}

/// Spawns a modeled thread; the closure runs under the model scheduler.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::spawn_modeled(f)
}

/// A pure scheduling point: lets the scheduler switch threads here.
pub fn yield_now() {
    let (exec, me) = rt::require_current();
    exec.op(me, |_| OpOutcome::Ready(()));
}
