//! Execution runtime: one [`Execution`] drives one schedule of the model.
//!
//! Modeled threads are real OS threads, but only one ever runs at a time:
//! every visible operation on a modeled primitive funnels through
//! [`Execution::op`], which makes a *scheduling decision* (recorded for the
//! DFS explorer, replayed on later runs) and then blocks the thread until it
//! is chosen again.  All modeled object state lives in a single table behind
//! one lock, so the interleaving the scheduler picks is exactly the
//! interleaving the program observes — there is no hidden concurrency to
//! race on.

use std::collections::{HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};

/// Index of a modeled thread within its execution.
pub(crate) type ThreadId = usize;
/// Index of a modeled sync object within its execution's object table.
pub(crate) type ObjectId = usize;

/// Why a modeled thread cannot currently run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocker {
    /// Waiting to acquire a mutex or rwlock (any mode).
    Lock(ObjectId),
    /// Waiting for a message (or disconnection) on a channel.
    Recv(ObjectId),
    /// Waiting for a condvar notification.
    CondWait(ObjectId),
    /// Waiting for a thread to finish.
    Join(ThreadId),
}

/// Run state of a modeled thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(Blocker),
    Finished,
}

/// One scheduling decision: how many threads were eligible and which index
/// into that eligible list was chosen.  The DFS explorer increments the last
/// incompletely-explored decision to enumerate every schedule.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    pub enabled: u32,
    pub chosen: u32,
}

/// State of one modeled synchronization object.
#[derive(Debug)]
pub(crate) enum Object {
    Mutex {
        owner: Option<ThreadId>,
    },
    Rw {
        writer: Option<ThreadId>,
        readers: usize,
    },
    /// Channel payloads live in the channel handle itself (they are generic
    /// over `T`); the table entry only anchors the [`Blocker::Recv`] tag.
    Chan,
    Cond {
        waiters: VecDeque<ThreadId>,
        notified: HashSet<ThreadId>,
    },
    Atomic {
        value: u64,
    },
}

/// Outcome of one attempt at a modeled operation.
pub(crate) enum OpOutcome<R> {
    /// The operation completed with this result.
    Ready(R),
    /// The operation cannot proceed; park the thread until woken.
    Block(Blocker),
}

/// Sentinel panic payload used to unwind modeled threads when the execution
/// has already failed (another thread panicked, or a deadlock was detected).
/// Thread wrappers recognize it and exit quietly instead of reporting a
/// second failure.
pub(crate) struct ModelAbort;

pub(crate) struct ExecState {
    threads: Vec<Run>,
    current: ThreadId,
    pub(crate) decisions: Vec<Decision>,
    replay: Vec<u32>,
    preemptions: usize,
    cap: usize,
    objects: Vec<Object>,
    pub(crate) failure: Option<String>,
    done: bool,
}

impl ExecState {
    /// Marks every thread blocked on a blocker satisfying `pred` runnable
    /// again; it will re-attempt its operation when next scheduled.
    pub(crate) fn wake(&mut self, pred: impl Fn(Blocker) -> bool) {
        for run in &mut self.threads {
            if let Run::Blocked(b) = *run {
                if pred(b) {
                    *run = Run::Runnable;
                }
            }
        }
    }

    pub(crate) fn object(&mut self, id: ObjectId) -> &mut Object {
        &mut self.objects[id]
    }

    pub(crate) fn thread_finished(&self, tid: ThreadId) -> bool {
        self.threads[tid] == Run::Finished
    }

    fn enabled(&self) -> Vec<ThreadId> {
        (0..self.threads.len()).filter(|&t| self.threads[t] == Run::Runnable).collect()
    }
}

/// One run of the model under one schedule.  See the module docs.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, ThreadId)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing thread's execution context, or `None` outside a model.
pub(crate) fn current() -> Option<(Arc<Execution>, ThreadId)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The executing thread's execution context; panics outside `loom::model`.
pub(crate) fn require_current() -> (Arc<Execution>, ThreadId) {
    current().expect("loom primitives must be used inside loom::model")
}

fn set_current(exec: Arc<Execution>, tid: ThreadId) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Execution {
    fn new(replay: Vec<u32>, cap: usize) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![Run::Runnable],
                current: 0,
                decisions: Vec::new(),
                replay,
                preemptions: 0,
                cap,
                objects: Vec::new(),
                failure: None,
                done: false,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The runtime's own lock is never poisoned observably: a panicking
        // modeled thread records its failure and unwinds outside the lock.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a new modeled sync object and returns its id.
    pub(crate) fn register_object(&self, object: Object) -> ObjectId {
        let mut s = self.lock();
        s.objects.push(object);
        s.objects.len() - 1
    }

    /// Runs `f` under the state lock *without* a scheduling decision and
    /// without ever panicking — for guard/handle drops, which may run during
    /// unwinding where a second panic would abort the process.
    pub(crate) fn silent<R>(&self, f: impl FnOnce(&mut ExecState) -> R) -> R {
        let mut s = self.lock();
        f(&mut s)
    }

    /// Performs one modeled operation for the calling thread: makes a
    /// scheduling decision, then attempts `f`; if `f` blocks, parks the
    /// thread and retries each time it is woken and scheduled again.
    pub(crate) fn op<R>(
        &self,
        tid: ThreadId,
        mut f: impl FnMut(&mut ExecState) -> OpOutcome<R>,
    ) -> R {
        loop {
            self.reschedule(tid);
            let mut s = self.lock();
            match f(&mut s) {
                OpOutcome::Ready(r) => return r,
                OpOutcome::Block(b) => {
                    s.threads[tid] = Run::Blocked(b);
                    drop(s);
                    // Loop: reschedule() sees us blocked, hands off, and
                    // returns once a waker made us runnable and a later
                    // decision chose us.
                }
            }
        }
    }

    /// One scheduling decision made by thread `tid` (the current thread):
    /// choose who runs next — replaying the DFS prefix or defaulting to the
    /// first eligible thread — then wait until `tid` is chosen again.
    fn reschedule(&self, tid: ThreadId) {
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        let enabled = s.enabled();
        if enabled.is_empty() {
            // The caller itself is blocked (else it would be enabled) and so
            // is everyone else: the model deadlocked.
            s.failure = Some(format!("deadlock: every live thread is blocked ({:?})", s.threads));
            s.done = true;
            self.cv.notify_all();
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        let self_runnable = s.threads[tid] == Run::Runnable;
        // Bounded preemption: once the budget is spent, a runnable current
        // thread keeps running (no branching), which keeps the DFS finite
        // without losing the interleavings that need few context switches —
        // the classic bug-finding sweet spot.
        let choices: Vec<ThreadId> =
            if self_runnable && s.preemptions >= s.cap && enabled.contains(&tid) {
                vec![tid]
            } else {
                enabled
            };
        let d = s.decisions.len();
        let idx = if d < s.replay.len() {
            let idx = s.replay[d] as usize;
            assert!(idx < choices.len(), "schedule replay diverged; the model is nondeterministic");
            idx
        } else {
            0
        };
        let chosen = choices[idx];
        s.decisions.push(Decision { enabled: choices.len() as u32, chosen: idx as u32 });
        if chosen != tid && self_runnable {
            s.preemptions += 1;
        }
        s.current = chosen;
        self.cv.notify_all();
        while s.current != tid && s.failure.is_none() {
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if s.failure.is_some() {
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Registers a new modeled thread (runnable, not yet scheduled).
    fn register_thread(&self) -> ThreadId {
        let mut s = self.lock();
        s.threads.push(Run::Runnable);
        s.threads.len() - 1
    }

    fn track_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.os_handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle);
    }

    /// Blocks a freshly spawned thread until the scheduler first picks it.
    /// Returns `false` when the execution failed before that happened.
    fn wait_first_schedule(&self, tid: ThreadId) -> bool {
        let mut s = self.lock();
        while s.current != tid && s.failure.is_none() {
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.failure.is_none()
    }

    /// Marks `tid` finished, wakes joiners, and hands the schedule to the
    /// next thread (a recorded decision) or declares the run complete.
    fn finish(&self, tid: ThreadId) {
        let mut s = self.lock();
        s.threads[tid] = Run::Finished;
        s.wake(|b| b == Blocker::Join(tid));
        if s.threads.iter().all(|r| *r == Run::Finished) {
            s.done = true;
            self.cv.notify_all();
            return;
        }
        let enabled = s.enabled();
        if enabled.is_empty() {
            s.failure = Some(format!(
                "deadlock: thread {tid} finished but every remaining thread is blocked ({:?})",
                s.threads
            ));
            s.done = true;
            self.cv.notify_all();
            return;
        }
        let d = s.decisions.len();
        let idx = if d < s.replay.len() { s.replay[d] as usize } else { 0 };
        let idx = idx.min(enabled.len() - 1);
        s.decisions.push(Decision { enabled: enabled.len() as u32, chosen: idx as u32 });
        s.current = enabled[idx];
        self.cv.notify_all();
    }

    /// Records a real panic from a modeled thread as the run's failure.
    fn fail(&self, tid: ThreadId, message: String) {
        let mut s = self.lock();
        s.threads[tid] = Run::Finished;
        if s.failure.is_none() {
            s.failure = Some(message);
        }
        s.done = true;
        self.cv.notify_all();
    }

    fn wait_done(&self) {
        let mut s = self.lock();
        while !s.done {
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "modeled thread panicked".to_string()
    }
}

/// Spawns a modeled thread in the calling thread's execution.
pub(crate) fn spawn_modeled<F, T>(f: F) -> crate::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = require_current();
    let tid = exec.register_thread();
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn({
            let exec = Arc::clone(&exec);
            let result = Arc::clone(&result);
            move || {
                set_current(Arc::clone(&exec), tid);
                if exec.wait_first_schedule(tid) {
                    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
                        Ok(value) => {
                            *result.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                                Some(value);
                            exec.finish(tid);
                        }
                        Err(payload) => {
                            if payload.is::<ModelAbort>() {
                                // The run already failed elsewhere; exit
                                // quietly so only one failure is reported.
                                exec.silent(|s| s.threads[tid] = Run::Finished);
                            } else {
                                exec.fail(tid, panic_message(payload.as_ref()));
                            }
                        }
                    }
                } else {
                    exec.silent(|s| s.threads[tid] = Run::Finished);
                }
                clear_current();
            }
        })
        .expect("spawning a modeled OS thread");
    exec.track_os_handle(os);
    // Spawning is itself a visible operation of the parent: give the
    // scheduler the chance to run the child (or anyone else) first.
    exec.op(parent, |_| OpOutcome::Ready(()));
    crate::thread::JoinHandle::new(tid, result)
}

/// Outcome of one schedule: the decision trace (for the DFS explorer) and
/// the failure, if the run found one.
pub(crate) struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<String>,
}

/// Runs the model closure once under the given schedule prefix.
pub(crate) fn run_once<F>(f: Arc<F>, replay: Vec<u32>, cap: usize) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new(replay, cap));
    let root = std::thread::Builder::new()
        .name("loom-model-0".to_string())
        .spawn({
            let exec = Arc::clone(&exec);
            move || {
                set_current(Arc::clone(&exec), 0);
                match std::panic::catch_unwind(AssertUnwindSafe(|| f())) {
                    Ok(()) => exec.finish(0),
                    Err(payload) => {
                        if payload.is::<ModelAbort>() {
                            exec.silent(|s| s.threads[0] = Run::Finished);
                        } else {
                            exec.fail(0, panic_message(payload.as_ref()));
                        }
                    }
                }
                clear_current();
            }
        })
        .expect("spawning the model's root thread");
    exec.wait_done();
    let _ = root.join();
    let handles = std::mem::take(
        &mut *exec.os_handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for handle in handles {
        let _ = handle.join();
    }
    let s = exec.lock();
    RunOutcome { decisions: s.decisions.clone(), failure: s.failure.clone() }
}
