//! A loom-style deterministic model checker for the workspace's concurrency.
//!
//! Offline stand-in for the `loom` crate: modeled `Mutex`/`RwLock`/`Condvar`,
//! atomics and mpsc-style channels behind the API surface the workspace
//! already uses, plus a controlled scheduler that *exhaustively enumerates
//! thread interleavings* — a depth-first search over schedule prefixes with a
//! bounded-preemption cap.
//!
//! # How it works
//!
//! [`model()`] runs a closure repeatedly, once per schedule.  Modeled threads
//! are real OS threads, but only one runs at a time: every operation on a
//! modeled primitive is a *scheduling decision point* where the runtime picks
//! which thread runs next.  The sequence of decisions is recorded; after each
//! run the explorer rewinds to the deepest decision with an unexplored
//! alternative and replays — enumerating every interleaving reachable within
//! the preemption bound.  A panic, failed assertion, or deadlock in any
//! schedule fails the whole exploration and prints the offending decision
//! trace for replay.
//!
//! # Example
//!
//! ```ignore
//! let report = loom::model(|| {
//!     let lock = std::sync::Arc::new(loom::sync::Mutex::new(0u32));
//!     let l2 = lock.clone();
//!     let t = loom::thread::spawn(move || *l2.lock() += 1);
//!     *lock.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*lock.lock(), 2);
//! });
//! assert!(report.schedules > 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Report};
