//! Sanity suite for the model checker itself: correct protocols pass while
//! exploring many schedules, and seeded bugs — lost updates, deadlocks,
//! double-frees of logical resources — are *found*.

use std::panic::catch_unwind;
use std::sync::Arc;

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Condvar, Mutex, RwLock};

#[test]
fn mutex_counter_is_exact() {
    let report = loom::model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || *n.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.schedules > 1, "only {} schedules explored", report.schedules);
    assert!(report.max_decisions > 0);
}

#[test]
fn finds_seeded_lost_update() {
    // A non-atomic read-modify-write: two threads each load then store
    // `v + 1`.  Some interleaving loses an update; the checker must find it.
    let result = catch_unwind(|| {
        loom::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    loom::thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
    });
    let message = match result {
        Ok(_) => panic!("the seeded lost update was not found"),
        Err(payload) => *payload.downcast::<String>().expect("panic message"),
    };
    assert!(message.contains("lost update"), "unexpected failure: {message}");
    assert!(message.contains("failing schedule"), "no replay trace: {message}");
}

#[test]
fn finds_seeded_deadlock() {
    // Classic AB-BA lock inversion.
    let result = catch_unwind(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join().unwrap();
        });
    });
    let message = match result {
        Ok(_) => panic!("the seeded deadlock was not found"),
        Err(payload) => *payload.downcast::<String>().expect("panic message"),
    };
    assert!(message.contains("deadlock"), "unexpected failure: {message}");
}

#[test]
fn condvar_wakeups_are_never_lost() {
    let report = loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (flag, cv) = &*p2;
            *flag.lock() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        let mut g = flag.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join().unwrap();
    });
    // Every schedule terminates: a notify landing before the wait enqueues
    // must still be observed (else the model deadlocks and this test fails).
    assert!(report.schedules > 1, "only {} schedules explored", report.schedules);
}

#[test]
fn rwlock_readers_see_complete_writes() {
    let report = loom::model(|| {
        let cell = Arc::new(RwLock::new((0u32, 0u32)));
        let c2 = Arc::clone(&cell);
        let writer = loom::thread::spawn(move || {
            let mut g = c2.write();
            g.0 = 1;
            g.1 = 1;
        });
        {
            let g = cell.read();
            assert_eq!(g.0, g.1, "reader observed a torn write");
        }
        writer.join().unwrap();
    });
    assert!(report.schedules > 1);
}

#[test]
fn try_lock_refuses_a_held_lock() {
    loom::model(|| {
        let m = Mutex::new(5u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("lock is free"), 5);
    });
}

#[test]
fn channel_delivers_in_order_across_threads() {
    let report = loom::model(|| {
        let (tx, rx) = loom::sync::mpsc::unbounded();
        let t = loom::thread::spawn(move || {
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    });
    assert!(report.schedules > 1);
}

#[test]
fn preemption_bound_caps_the_search() {
    let tight = loom::Builder { preemption_bound: 0, max_schedules: 500_000 }.check(two_workers);
    let loose = loom::Builder { preemption_bound: 3, max_schedules: 500_000 }.check(two_workers);
    assert!(
        tight.schedules < loose.schedules,
        "bound 0 explored {} schedules, bound 3 explored {}",
        tight.schedules,
        loose.schedules
    );
}

fn two_workers() {
    let n = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            loom::thread::spawn(move || {
                for _ in 0..2 {
                    *n.lock() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*n.lock(), 4);
}

#[test]
fn atomics_compose_with_locks() {
    let report = loom::model(|| {
        let hits = Arc::new(AtomicU64::new(0));
        let table = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let hits = Arc::clone(&hits);
                let table = Arc::clone(&table);
                loom::thread::spawn(move || {
                    table.lock().push(i);
                    hits.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(table.lock().len(), 2);
    });
    assert!(report.schedules > 1);
}
