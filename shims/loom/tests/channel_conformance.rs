//! Shared conformance suite pinning the channel contract to BOTH
//! implementations: the modeled channel (`loom::sync::mpsc`, run inside the
//! model checker) and the real one (`crossbeam::channel`, run on real
//! threads).  The contract:
//!
//! * a queued message is always delivered — even with a zero timeout or with
//!   every sender already gone;
//! * `Disconnected` is reported only on an empty channel with no senders;
//! * `send` fails (returning the message) once the receiver is gone;
//! * cloned senders keep the channel connected until the last one drops.
//!
//! Every assertion is timing-independent so the same bodies are valid under
//! model time (where a timeout fires immediately) and wall-clock time.

macro_rules! conformance_suite {
    ($name:ident, $ch:path, $th:path, $run:expr) => {
        mod $name {
            use std::time::Duration;
            use $ch as ch;
            use $th as th;

            const ZERO: Duration = Duration::from_millis(0);
            const SHORT: Duration = Duration::from_millis(10);

            #[test]
            fn queued_messages_beat_disconnect() {
                $run(|| {
                    let (tx, rx) = ch::unbounded();
                    tx.send(1u8).unwrap();
                    tx.send(2u8).unwrap();
                    drop(tx);
                    assert_eq!(rx.recv_timeout(ZERO), Ok(1));
                    assert_eq!(rx.recv_timeout(ZERO), Ok(2));
                    assert_eq!(rx.recv_timeout(ZERO), Err(ch::RecvTimeoutError::Disconnected));
                    assert_eq!(rx.try_recv(), Err(ch::TryRecvError::Disconnected));
                });
            }

            #[test]
            fn empty_connected_channel_times_out() {
                $run(|| {
                    let (tx, rx) = ch::unbounded();
                    assert_eq!(rx.recv_timeout(ZERO), Err(ch::RecvTimeoutError::Timeout));
                    assert_eq!(rx.try_recv(), Err(ch::TryRecvError::Empty));
                    tx.send(3u8).unwrap();
                    assert_eq!(rx.recv_timeout(SHORT), Ok(3));
                });
            }

            #[test]
            fn send_fails_once_receiver_is_gone() {
                $run(|| {
                    let (tx, rx) = ch::unbounded();
                    drop(rx);
                    match tx.send(7u8) {
                        Err(ch::SendError(v)) => assert_eq!(v, 7),
                        Ok(()) => panic!("send succeeded with no receiver"),
                    }
                });
            }

            #[test]
            fn recv_delivers_across_threads() {
                $run(|| {
                    let (tx, rx) = ch::unbounded();
                    let t = th::spawn(move || tx.send(5u8).unwrap());
                    assert_eq!(rx.recv(), Ok(5));
                    t.join().unwrap();
                });
            }

            #[test]
            fn recv_reports_disconnect_across_threads() {
                $run(|| {
                    let (tx, rx) = ch::unbounded::<u8>();
                    let t = th::spawn(move || drop(tx));
                    assert_eq!(rx.recv(), Err(ch::RecvError));
                    t.join().unwrap();
                });
            }

            #[test]
            fn clones_keep_the_channel_connected() {
                $run(|| {
                    let (tx, rx) = ch::unbounded();
                    let tx2 = tx.clone();
                    drop(tx);
                    assert_eq!(rx.recv_timeout(ZERO), Err(ch::RecvTimeoutError::Timeout));
                    tx2.send(9u8).unwrap();
                    drop(tx2);
                    assert_eq!(rx.recv_timeout(ZERO), Ok(9));
                    assert_eq!(rx.recv_timeout(ZERO), Err(ch::RecvTimeoutError::Disconnected));
                });
            }
        }
    };
}

conformance_suite!(modeled_channel, loom::sync::mpsc, loom::thread, |f: fn()| {
    loom::model(f);
});
conformance_suite!(real_channel, crossbeam::channel, std::thread, |f: fn()| f());
