//! Minimal offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot),
//! used because this workspace builds without network access to a registry.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s non-poisoning API
//! (guards come straight out of `lock()` with no `Result`), backed by the
//! std primitives.  Poisoning is deliberately swallowed: a panicking holder
//! does not wedge other threads, matching `parking_lot` semantics.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`], with the **by-value** guard
/// API of the loom shim's modeled condvar (`wait(guard) -> guard`), so code
/// written against `steady_service::sync` compiles unchanged under
/// `--cfg steady_loom`.  Timed waits return `(guard, timed_out)`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guard's mutex and waits for a notification,
    /// then reacquires the mutex and returns a fresh guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// [`Self::wait`] with an upper bound: returns the reacquired guard and
    /// whether the wait ended by timeout rather than notification.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) =
            self.inner.wait_timeout(guard, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose guards never come wrapped in `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
