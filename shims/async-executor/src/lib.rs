//! Offline stand-in for the `async-task` / `async-executor` pair, shaped
//! after the subset the `steady-sched` work-stealing scheduler consumes.
//!
//! The core primitive is [`spawn`]: it pairs a future with a *schedule*
//! callback and returns a [`Runnable`] (one unit of poll work, pushed onto
//! whatever queue the scheduler likes) and a [`Task`] handle (await-or-cancel
//! the output).  When the future returns `Pending` and is later woken, the
//! waker re-invokes the schedule callback with a fresh `Runnable` — so the
//! *scheduler* decides where resumed work lands (its local deque, a steal
//! target, a priority lane), which is exactly the seam a work-stealing
//! executor needs.
//!
//! Everything is safe code: the task state machine is a mutex-guarded enum
//! and the waker is an `Arc` implementing [`std::task::Wake`] — no raw
//! vtables, no unsafe.  A real deployment would swap in the crates.io pair;
//! this shim pins the exact API surface the workspace consumes so the build
//! stays offline.
//!
//! Also provided: [`oneshot`], a single-value channel whose receiver is a
//! future — the "waiters are wakers" building block (a parked waiter costs a
//! stored [`Waker`], not a blocked thread) — and a minimal FIFO [`Executor`]
//! used by the self-tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Where a task is in its lifecycle.  The future itself is stored separately
/// so it can be taken out of the lock while being polled (a waker invoked
/// *during* the poll must not deadlock against the state mutex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    /// A `Runnable` exists (queued somewhere) and will poll the future.
    Scheduled,
    /// A worker is polling the future right now.
    Running,
    /// As `Running`, but a wake arrived mid-poll: if the poll returns
    /// `Pending` the runner reschedules immediately instead of parking.
    Notified,
    /// The last poll returned `Pending`; the future sleeps until its waker
    /// fires and turns it back into `Scheduled`.
    Waiting,
    /// The future completed; the output (if any) is in the slot.
    Completed,
    /// The task was cancelled; the future was (or will be) dropped unpolled.
    Cancelled,
}

/// The shared heart of one spawned task.
struct Core<F: Future> {
    state: Mutex<TaskState<F>>,
    /// Signals `Completed`/`Cancelled` to blocking [`Task::wait`] callers.
    done: Condvar,
    schedule: Box<dyn Fn(Runnable) + Send + Sync>,
}

struct TaskState<F: Future> {
    /// Present except while a worker holds it out for polling (and after
    /// completion/cancellation, when it has been dropped).
    future: Option<Pin<Box<F>>>,
    output: Option<F::Output>,
    lifecycle: Lifecycle,
    /// Wakers of tasks awaiting this task's completion via [`Task::poll_join`].
    join_wakers: Vec<Waker>,
}

impl<F> Wake for Core<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    fn wake(self: Arc<Self>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.lifecycle {
            Lifecycle::Waiting => {
                state.lifecycle = Lifecycle::Scheduled;
                drop(state);
                let runnable = Runnable { core: Arc::clone(&self) as Arc<dyn Run> };
                (self.schedule)(runnable);
            }
            Lifecycle::Running => state.lifecycle = Lifecycle::Notified,
            // Scheduled already has a pending Runnable; Notified already
            // re-polls; Completed/Cancelled wakes are no-ops.
            _ => {}
        }
    }
}

/// Object-safe polling surface a [`Runnable`] drives.
trait Run: Send + Sync {
    /// Polls the task once.  Returns `true` when the task reached a terminal
    /// state (completed or cancelled) during or before this call.
    fn run_once(self: Arc<Self>) -> bool;
}

impl<F> Run for Core<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    fn run_once(self: Arc<Self>) -> bool {
        let mut future = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.lifecycle {
                Lifecycle::Completed | Lifecycle::Cancelled => return true,
                _ => {}
            }
            state.lifecycle = Lifecycle::Running;
            match state.future.take() {
                Some(f) => f,
                // Cancelled between schedule and run: nothing to poll.
                None => {
                    state.lifecycle = Lifecycle::Cancelled;
                    return true;
                }
            }
        };
        // Poll with the state lock released: a waker fired synchronously
        // from inside the poll locks the state and must not deadlock.
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        let poll = future.as_mut().poll(&mut cx);

        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match poll {
            Poll::Ready(output) => {
                state.output = Some(output);
                state.lifecycle = Lifecycle::Completed;
                let joiners = std::mem::take(&mut state.join_wakers);
                drop(state);
                self.done.notify_all();
                for waker in joiners {
                    waker.wake();
                }
                true
            }
            Poll::Pending => {
                if state.lifecycle == Lifecycle::Cancelled {
                    // Cancelled mid-poll: drop the future, report terminal.
                    drop(state);
                    self.done.notify_all();
                    return true;
                }
                state.future = Some(future);
                if state.lifecycle == Lifecycle::Notified {
                    // A wake raced the poll: go around again immediately.
                    state.lifecycle = Lifecycle::Scheduled;
                    drop(state);
                    let runnable = Runnable { core: Arc::clone(&self) as Arc<dyn Run> };
                    (self.schedule)(runnable);
                } else {
                    state.lifecycle = Lifecycle::Waiting;
                }
                false
            }
        }
    }
}

/// Object-safe join surface a [`Task`] drives.
trait Join<T>: Send + Sync {
    fn wait(&self) -> Option<T>;
    fn poll_join(&self, cx: &mut Context<'_>) -> Poll<Option<T>>;
    fn cancel(&self);
    fn is_finished(&self) -> bool;
}

impl<F> Join<F::Output> for Core<F>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    fn wait(&self) -> Option<F::Output> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match state.lifecycle {
                Lifecycle::Completed => return state.output.take(),
                Lifecycle::Cancelled => return None,
                _ => {
                    state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn poll_join(&self, cx: &mut Context<'_>) -> Poll<Option<F::Output>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.lifecycle {
            Lifecycle::Completed => Poll::Ready(state.output.take()),
            Lifecycle::Cancelled => Poll::Ready(None),
            _ => {
                state.join_wakers.push(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    fn cancel(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.lifecycle {
            Lifecycle::Completed | Lifecycle::Cancelled => return,
            _ => {}
        }
        state.lifecycle = Lifecycle::Cancelled;
        // If a worker holds the future out for polling this is `None`; the
        // worker observes `Cancelled` on return and drops it.
        state.future = None;
        let joiners = std::mem::take(&mut state.join_wakers);
        drop(state);
        self.done.notify_all();
        for waker in joiners {
            waker.wake();
        }
    }

    fn is_finished(&self) -> bool {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        matches!(state.lifecycle, Lifecycle::Completed | Lifecycle::Cancelled)
    }
}

/// One schedulable unit of poll work.  Push it wherever the scheduler keeps
/// runnable work (a deque, a lane, a steal target) and call [`Runnable::run`]
/// from any worker thread.
pub struct Runnable {
    core: Arc<dyn Run>,
}

impl Runnable {
    /// Polls the task once.  Returns `true` when the task reached a terminal
    /// state (its output is ready, or it was cancelled).  On `false` the
    /// future is parked; its waker will hand the scheduler a new `Runnable`.
    pub fn run(self) -> bool {
        self.core.run_once()
    }
}

impl std::fmt::Debug for Runnable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Runnable")
    }
}

/// Handle to a spawned task's output.  Dropping the handle *detaches* the
/// task (it keeps running); [`Task::cancel`] stops it cooperatively.
pub struct Task<T> {
    core: Arc<dyn Join<T>>,
}

impl<T> Task<T> {
    /// Blocks until the task completes and returns its output, or `None` if
    /// it was cancelled first.
    pub fn wait(self) -> Option<T> {
        self.core.wait()
    }

    /// Cancels the task: an unpolled or parked future is dropped without
    /// running; a future currently being polled finishes that poll and is
    /// then dropped.  Waiters observe `None`.
    pub fn cancel(&self) {
        self.core.cancel();
    }

    /// Whether the task has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        self.core.is_finished()
    }

    /// Detaches the task explicitly (equivalent to dropping the handle).
    pub fn detach(self) {}
}

impl<T> Future for Task<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        self.core.poll_join(cx)
    }
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Task")
    }
}

/// Pairs `future` with a scheduling callback, in the `async-task` shape.
///
/// The returned [`Runnable`] represents the *first* poll: the caller decides
/// where it runs (`spawn` does not invoke `schedule` for it).  Every
/// *subsequent* poll — a parked future woken by its waker — reaches the
/// scheduler through `schedule`.
pub fn spawn<F, S>(future: F, schedule: S) -> (Runnable, Task<F::Output>)
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
    S: Fn(Runnable) + Send + Sync + 'static,
{
    let core = Arc::new(Core {
        state: Mutex::new(TaskState {
            future: Some(Box::pin(future)),
            output: None,
            lifecycle: Lifecycle::Scheduled,
            join_wakers: Vec::new(),
        }),
        done: Condvar::new(),
        schedule: Box::new(schedule),
    });
    let runnable = Runnable { core: Arc::clone(&core) as Arc<dyn Run> };
    let task = Task { core: core as Arc<dyn Join<F::Output>> };
    (runnable, task)
}

// ---------------------------------------------------------------------------
// oneshot: a single-value channel whose receiver is a future
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    closed: bool,
    waker: Option<Waker>,
}

/// Sending half of a [`oneshot`] channel.  Dropping it without sending
/// closes the channel; the receiver resolves to `None`.
pub struct OneshotSender<T> {
    state: Arc<Mutex<OneshotState<T>>>,
}

impl<T> OneshotSender<T> {
    /// Delivers the value and wakes the receiving task, if one is parked.
    pub fn send(self, value: T) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.value = Some(value);
        state.closed = true;
        let waker = state.waker.take();
        drop(state);
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return;
        }
        state.closed = true;
        let waker = state.waker.take();
        drop(state);
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Receiving half of a [`oneshot`] channel: a future resolving to
/// `Some(value)` on send, `None` when the sender was dropped.  Awaiting it
/// costs a stored [`Waker`], not a blocked thread.
pub struct OneshotReceiver<T> {
    state: Arc<Mutex<OneshotState<T>>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = state.value.take() {
            return Poll::Ready(Some(value));
        }
        if state.closed {
            return Poll::Ready(None);
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Creates a single-value channel whose receiver is a future.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Arc::new(Mutex::new(OneshotState { value: None, closed: false, waker: None }));
    (OneshotSender { state: Arc::clone(&state) }, OneshotReceiver { state })
}

// ---------------------------------------------------------------------------
// Executor: a minimal FIFO run queue for self-tests and simple consumers
// ---------------------------------------------------------------------------

/// A minimal single-queue executor: `spawn` pushes the first poll onto a
/// FIFO, wakes reschedule onto the same FIFO, and [`Executor::tick`] runs
/// one unit.  The work-stealing scheduler in `steady-sched` does *not* use
/// this — it supplies its own per-worker queues via [`spawn`] — but the
/// shim's own tests and simple consumers drive futures with it.
#[derive(Clone, Default)]
pub struct Executor {
    queue: Arc<Mutex<VecDeque<Runnable>>>,
}

impl Executor {
    /// An empty executor.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Spawns `future`; both its first poll and every wake land on this
    /// executor's queue.
    pub fn spawn<F>(&self, future: F) -> Task<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let queue = Arc::clone(&self.queue);
        let (runnable, task) = spawn(future, move |runnable| {
            queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(runnable);
        });
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(runnable);
        task
    }

    /// Runs one queued poll; `false` when the queue was empty.
    pub fn tick(&self) -> bool {
        let runnable = self.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
        match runnable {
            Some(runnable) => {
                runnable.run();
                true
            }
            None => false,
        }
    }

    /// Ticks until the queue is empty, returning how many polls ran.
    pub fn run_until_idle(&self) -> usize {
        let mut ran = 0;
        while self.tick() {
            ran += 1;
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ready_future_completes_on_first_run() {
        let (runnable, task) = spawn(async { 41 + 1 }, |_| panic!("no reschedule expected"));
        assert!(runnable.run());
        assert!(task.is_finished());
        assert_eq!(task.wait(), Some(42));
    }

    #[test]
    fn parked_future_resumes_through_the_schedule_callback() {
        let resumed: Arc<Mutex<Vec<Runnable>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = oneshot::<u64>();
        let hook = Arc::clone(&resumed);
        let (runnable, task) = spawn(async move { rx.await.unwrap_or(0) * 2 }, move |runnable| {
            hook.lock().unwrap().push(runnable);
        });
        // First poll parks the future on the oneshot waker.
        assert!(!runnable.run());
        assert!(resumed.lock().unwrap().is_empty());
        // The send wakes it: the waker hands the scheduler a new Runnable.
        tx.send(21);
        let runnable = resumed.lock().unwrap().pop().expect("woken task rescheduled");
        assert!(runnable.run());
        assert_eq!(task.wait(), Some(42));
    }

    #[test]
    fn wake_from_another_thread_reschedules() {
        let executor = Executor::new();
        let (tx, rx) = oneshot::<&'static str>();
        let task = executor.spawn(rx);
        assert_eq!(executor.run_until_idle(), 1, "first poll parks");
        assert!(!task.is_finished());
        let sender = std::thread::spawn(move || tx.send("hello"));
        sender.join().unwrap();
        executor.run_until_idle();
        assert_eq!(task.wait(), Some(Some("hello")));
    }

    #[test]
    fn cancelled_task_never_runs_its_future() {
        let ran = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&ran);
        let (runnable, task) = spawn(
            async move {
                flag.fetch_add(1, Ordering::SeqCst);
            },
            |_| {},
        );
        task.cancel();
        assert!(runnable.run(), "a cancelled task is terminal");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "the future must not have been polled");
        assert!(task.is_finished());
        assert_eq!(task.wait(), None);
    }

    #[test]
    fn dropped_sender_resolves_the_receiver_to_none() {
        let executor = Executor::new();
        let (tx, rx) = oneshot::<u64>();
        let task = executor.spawn(rx);
        executor.run_until_idle();
        drop(tx);
        executor.run_until_idle();
        assert_eq!(task.wait(), Some(None));
    }

    #[test]
    fn tasks_can_await_other_tasks() {
        let executor = Executor::new();
        let (tx, rx) = oneshot::<u64>();
        let inner = executor.spawn(async move { rx.await.unwrap_or(0) + 1 });
        let outer = executor.spawn(async move { inner.await.unwrap_or(0) + 1 });
        executor.run_until_idle();
        tx.send(40);
        executor.run_until_idle();
        assert_eq!(outer.wait(), Some(42));
    }

    #[test]
    fn notified_during_poll_repolls_instead_of_parking() {
        // A future that wakes itself and returns Pending once: the runner
        // must observe the Notified state and reschedule immediately.
        struct SelfWake {
            polled: usize,
        }
        impl Future for SelfWake {
            type Output = usize;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
                self.polled += 1;
                if self.polled == 1 {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                } else {
                    Poll::Ready(self.polled)
                }
            }
        }
        let executor = Executor::new();
        let task = executor.spawn(SelfWake { polled: 0 });
        assert_eq!(executor.run_until_idle(), 2, "self-wake forces a second poll");
        assert_eq!(task.wait(), Some(2));
    }
}
