//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), used because this workspace builds without
//! network access to a registry.
//!
//! Only the pieces the workspace actually consumes are provided:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` over integer and
//! float ranges.  The generator is SplitMix64 — deterministic for a given
//! seed, which is all the platform generators and tests rely on.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the subset of `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the (non-empty) range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: probability {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=9u32);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(0..5usize);
            assert!(w < 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
