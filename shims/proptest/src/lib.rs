//! Minimal offline stand-in for [`proptest`](https://crates.io/crates/proptest),
//! used because this workspace builds without network access to a registry.
//!
//! It keeps proptest's *surface*: the [`proptest!`] macro (with
//! `#![proptest_config(..)]` and `name in strategy` parameters), the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, `any::<T>()`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`] and the
//! `prop_assert*` / `prop_assume!` macros.  Semantics are simplified: cases are
//! drawn from a deterministic SplitMix64 stream and failures are reported
//! without shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and the per-case error type.

    /// Error produced by a single test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case asked to be discarded (`prop_assume!` failed).
        Reject(String),
        /// The case failed (`prop_assert*!` failed).
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Subset of proptest's runner configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of rejected cases before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Deterministic SplitMix64 stream feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The default deterministic generator (fixed seed: runs reproduce).
        pub fn default_rng() -> Self {
            TestRng { state: 0x243F_6A88_85A3_08D3 }
        }

        /// Returns the next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, pred }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`] and `prop_oneof!`.
    pub trait DynStrategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn DynStrategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.inner.dyn_sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn DynStrategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].dyn_sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards small magnitudes so edge cases (0, ±1, …)
                    // appear often, while still covering the full width.
                    match rng.next_u64() % 4 {
                        0 => (rng.next_u64() % 33) as i64 as $t,
                        1 => ((rng.next_u64() % 33) as i64).wrapping_neg() as $t,
                        _ => {
                            let mut acc: u128 = 0;
                            for _ in 0..2 {
                                acc = (acc << 64) | rng.next_u64() as u128;
                            }
                            acc as $t
                        }
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The "any value of `T`" strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Type-erases a strategy into a boxed [`DynStrategy`] (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn erase<S: Strategy + 'static>(strategy: S) -> Box<dyn DynStrategy<Value = S::Value>> {
        Box::new(strategy)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification for [`fn@vec`]: an exact size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { start: r.start, end_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end_exclusive - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among alternative strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::erase($strat)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)*);
            }
        }
    };
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property-based tests.
///
/// Supports the common proptest form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::default_rng();
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "{}: too many rejected cases ({} passed, {} rejected)",
                                    stringify!($name), passed, rejected
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("{}: property failed: {}", stringify!($name), message);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (any::<i64>(), 1i64..=100i64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn assume_rejects((a, b) in pair()) {
            prop_assume!(a % 2 == 0);
            prop_assert!(b >= 1 && (a % 2 == 0));
        }

        #[test]
        fn vectors_respect_bounds(v in crate::collection::vec(0i64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn oneof_yields_both_arms(x in prop_oneof![Just(1i32), Just(2i32)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}
