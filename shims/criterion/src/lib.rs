//! Minimal offline stand-in for [`criterion`](https://crates.io/crates/criterion),
//! used because this workspace builds without network access to a registry.
//!
//! The API mirrors the subset the workspace's 14 bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — but the
//! statistics are deliberately simple: each benchmark runs for a short
//! wall-clock budget and reports mean time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id formed from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id formed from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total wall-clock budget for the measurement loop.
    budget: Duration,
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly within the time budget and records the
    /// mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let started = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(routine());
            iterations += 1;
            if started.elapsed() >= self.budget || iterations >= 1000 {
                break;
            }
        }
        self.mean = Some(started.elapsed() / iterations as u32);
    }
}

fn run_one(group: &str, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { budget: Duration::from_millis(200), mean: None };
    f(&mut bencher);
    let label = if group.is_empty() { id.name.clone() } else { format!("{}/{}", group, id.name) };
    match bencher.mean {
        Some(mean) => println!("bench {label:<60} {mean:>12.3?}/iter"),
        None => println!("bench {label:<60} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(&self.name, id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&self.name, id.into(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one("", id.into(), |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = { let _ = $config; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; the shim ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("times", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn group_api_runs() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        criterion.bench_function("standalone", |b| b.iter(|| black_box(5u32).pow(2)));
    }
}
