//! Minimal offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam),
//! used because this workspace builds without network access to a registry.
//!
//! Covers the two submodules the workspace consumes:
//!
//! * [`channel`] — unbounded multi-producer channels with `try_recv`, backed
//!   by `std::sync::mpsc` (the workspace only ever keeps one consumer per
//!   receiver, so mpsc semantics suffice);
//! * [`thread`] — `scope`/`spawn` with crossbeam's signature (the spawn
//!   closure receives the scope, and `scope` returns `Err` if any spawned
//!   thread panicked), backed by `std::thread::scope`.

#![forbid(unsafe_code)]

/// Unbounded channels with crossbeam's module layout.
///
/// The types wrap `std::sync::mpsc` but pin down the timeout/disconnect
/// contract the `loom` shim's modeled channel defines — the two are held to
/// it by a shared conformance suite (`shims/loom/tests/channel_conformance`):
///
/// * a queued message is **always** delivered, even when every sender is
///   already gone or the timeout is zero;
/// * `Disconnected` is reported only on an *empty* channel with no senders;
/// * a message that arrives while `recv_timeout` waits is delivered, never
///   swallowed into a `Timeout`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`]: the receiver is gone.  Carries
    /// the unsent message back to the caller.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing (and handing it back) if the receiver is
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.inner.try_recv() {
                Ok(v) => Ok(v),
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }

        /// Timed receive under the modeled-channel contract: drain first (so
        /// queued messages beat zero timeouts and dead senders), wait at most
        /// `timeout`, and re-check after a timeout so a message racing the
        /// deadline is delivered rather than swallowed.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            match self.inner.recv_timeout(timeout) {
                Ok(v) => Ok(v),
                Err(mpsc::RecvTimeoutError::Timeout) => match self.try_recv() {
                    Ok(v) => Ok(v),
                    Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                    Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                },
                Err(mpsc::RecvTimeoutError::Disconnected) => match self.try_recv() {
                    // `std` drains the queue before reporting disconnection,
                    // but the contract is re-checked rather than assumed.
                    Ok(v) => Ok(v),
                    Err(_) => Err(RecvTimeoutError::Disconnected),
                },
            }
        }
    }
}

/// Scoped threads with crossbeam's `|scope|`-receiving spawn closures.
pub mod thread {
    use std::any::Any;

    /// Handle onto a scope, passed both to the `scope` closure and to every
    /// spawned closure (crossbeam lets workers spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope again.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; every thread spawned in it is joined before
    /// `scope` returns.  Returns `Err` if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for i in 1..=4u64 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_reports_worker_panics() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
