//! Minimal offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam),
//! used because this workspace builds without network access to a registry.
//!
//! Covers the two submodules the workspace consumes:
//!
//! * [`channel`] — unbounded multi-producer channels with `try_recv`, backed
//!   by `std::sync::mpsc` (the workspace only ever keeps one consumer per
//!   receiver, so mpsc semantics suffice);
//! * [`thread`] — `scope`/`spawn` with crossbeam's signature (the spawn
//!   closure receives the scope, and `scope` returns `Err` if any spawned
//!   thread panicked), backed by `std::thread::scope`.

/// Unbounded channels with crossbeam's module layout.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads with crossbeam's `|scope|`-receiving spawn closures.
pub mod thread {
    use std::any::Any;

    /// Handle onto a scope, passed both to the `scope` closure and to every
    /// spawned closure (crossbeam lets workers spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope again.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; every thread spawned in it is joined before
    /// `scope` returns.  Returns `Err` if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for i in 1..=4u64 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_reports_worker_panics() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
