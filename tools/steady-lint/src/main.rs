//! `steady-lint` — the project-invariant gate for the serving core.
//!
//! A token-level linter (no syn, no registry dependencies) enforcing the
//! concurrency invariants the model checker can't see from inside one
//! process:
//!
//! * **lock-order** — the documented lock order of `steady_service::sync`
//!   (admission locks `10` → ledger/bases `20` → cache shards `30` → seeded
//!   set `40`) is never reversed: acquiring a lock requires every held lock
//!   to rank strictly lower;
//! * **no-panics** — no `.unwrap()` / `.expect()` / `panic!()` in
//!   `crates/service` and `crates/runtime` non-test code, waivable with a
//!   `// lint: allow(panics)` comment on the same or preceding line;
//! * **relaxed-justified** — every `Ordering::Relaxed` in `crates/*/src`
//!   carries a `// relaxed:` justification on the same or a nearby
//!   preceding line;
//! * **worker-entry** — every function marked `// lint: worker-entry` (the
//!   closures executed on pool workers) is only called under a
//!   `catch_unwind` wrapper, so a panicking job can never shrink the pool;
//! * **forbid-unsafe** — every crate root in the workspace (crates, shims,
//!   tools) carries `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`
//!   with a `// lint: allow(deny-unsafe)` waiver).
//!
//! Run `cargo run -p steady-lint` to lint the workspace (exit code 1 on any
//! violation) and `cargo run -p steady-lint -- --self-test` to prove each
//! rule still fires on the seeded fixtures in `fixtures/`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation, printed as `file:line: [rule] message`.
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

/// A source line split into its code and comment parts: string/char literal
/// contents are blanked out of `code`, comment text (line and block) is
/// moved to `comment`.
#[derive(Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Splits `source` into per-line code/comment streams with literals blanked,
/// so token scans never match inside strings or comments.  Handles line
/// comments, nested block comments, string/raw-string/byte-string literals,
/// and the char-literal-vs-lifetime ambiguity.
fn strip(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut i = 0;
    fn push(lines: &mut Vec<Line>, c: char, to_comment: bool) {
        if c == '\n' {
            lines.push(Line::default());
        } else if let Some(line) = lines.last_mut() {
            if to_comment {
                line.comment.push(c);
            } else {
                line.code.push(c);
            }
        }
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                push(&mut lines, chars[i], true);
                i += 1;
            }
            continue;
        }
        if c == '/' && next == Some('*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    push(&mut lines, '/', true);
                    push(&mut lines, '*', true);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    push(&mut lines, '*', true);
                    push(&mut lines, '/', true);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push(&mut lines, chars[i], true);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) strings: r"..." / r#"..."# / br#"..."#.
        let raw_start = if c == 'r' && matches!(next, Some('"') | Some('#')) {
            Some(i + 1)
        } else if c == 'b' && next == Some('r') && matches!(chars.get(i + 2), Some('"') | Some('#'))
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                j += 1;
                // Scan for the closing quote followed by the same number of
                // hashes; blank everything (newlines preserved).
                while j < chars.len() {
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                    }
                    if chars[j] == '\n' {
                        push(&mut lines, '\n', false);
                    }
                    j += 1;
                }
                push(&mut lines, ' ', false);
                i = j;
                continue;
            }
        }
        // Plain (and byte) strings.
        if c == '"' || (c == 'b' && next == Some('"')) {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < chars.len() {
                match chars[j] {
                    '\\' => {
                        // A line-continuation escape (`\` before a newline)
                        // still consumes a source line — keep the count.
                        if chars.get(j + 1) == Some(&'\n') {
                            push(&mut lines, '\n', false);
                        }
                        j += 2;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        push(&mut lines, '\n', false);
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            push(&mut lines, ' ', false);
            i = j;
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no closing
        // quote right after the identifier char) is a lifetime.
        if c == '\'' {
            let is_char = next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
            if is_char {
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 1;
                    // Escapes like \u{1F600} run to the closing quote.
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                push(&mut lines, ' ', false);
                i = j;
                continue;
            }
        }
        push(&mut lines, c, false);
        i += 1;
    }
    lines
}

/// Marks the lines belonging to `#[cfg(test)]`-gated items (the module the
/// attribute precedes, brace-balanced), so production-only rules skip them.
/// Compound gates that still require `test` (`#[cfg(all(test, ...))]`, as
/// used by crates whose tests are excluded under `--cfg steady_loom`) count.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") || lines[i].code.contains("#[cfg(all(test") {
            // Mask to the end of the gated item (its brace-balanced body).
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether `hay[at..]` starts a token `needle` on an identifier boundary.
/// The preceding-char check only applies when the needle itself begins with
/// an identifier character — a needle like `.unwrap` legitimately follows a
/// receiver identifier.
fn token_at(hay: &str, at: usize, needle: &str) -> bool {
    if !hay[at..].starts_with(needle) {
        return false;
    }
    let ident_start = needle.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    !ident_start
        || at == 0
        || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// All identifier-boundary occurrences of `needle` in `hay`.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        if token_at(hay, at, needle) {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: no-panics
// ---------------------------------------------------------------------------

/// `.unwrap()` / `.expect()` / `panic!()` in non-test code, unless waived by
/// `// lint: allow(panics)` on the same or the preceding line.
fn rule_no_panics(path: &Path, lines: &[Line], mask: &[bool], out: &mut Vec<Violation>) {
    for (n, line) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        let waived = line.comment.contains("lint: allow(panics)")
            || (n > 0 && lines[n - 1].comment.contains("lint: allow(panics)"));
        if waived {
            continue;
        }
        for method in [".unwrap", ".expect"] {
            for at in token_positions(&line.code, method) {
                let rest = line.code[at + method.len()..].trim_start();
                if rest.starts_with('(') {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: n + 1,
                        rule: "no-panics",
                        message: format!(
                            "`{method}()` in production code — handle the error or waive with \
                             `// lint: allow(panics)`"
                        ),
                    });
                }
            }
        }
        for at in token_positions(&line.code, "panic!") {
            let rest = line.code[at + "panic!".len()..].trim_start();
            if rest.starts_with('(') {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: n + 1,
                    rule: "no-panics",
                    message: "`panic!()` in production code — return an error or waive with \
                              `// lint: allow(panics)`"
                        .into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: relaxed-justified
// ---------------------------------------------------------------------------

/// Every `Ordering::Relaxed` must carry a `// relaxed:` justification on the
/// same line or one of the four preceding lines.
fn rule_relaxed(path: &Path, lines: &[Line], mask: &[bool], out: &mut Vec<Violation>) {
    for (n, line) in lines.iter().enumerate() {
        if mask[n] || line.code.trim_start().starts_with("use ") {
            continue;
        }
        if token_positions(&line.code, "Relaxed").is_empty() {
            continue;
        }
        // A contiguous run of `Relaxed` lines (e.g. a stats-snapshot struct
        // literal) shares one justification: the comment must appear within
        // the five lines preceding the run's first line.
        let mut run_start = n;
        while run_start > 0 && !token_positions(&lines[run_start - 1].code, "Relaxed").is_empty() {
            run_start -= 1;
        }
        let justified =
            (run_start.saturating_sub(5)..=n).any(|m| lines[m].comment.contains("relaxed:"));
        if !justified {
            out.push(Violation {
                file: path.to_path_buf(),
                line: n + 1,
                rule: "relaxed-justified",
                message: "`Ordering::Relaxed` without a `// relaxed:` justification comment".into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: lock-order
// ---------------------------------------------------------------------------

/// The documented lock order of `steady_service::sync` (which also lists
/// the `steady_sched::sync` locks at ranks 10/12/25), by the receiver's
/// final named path component.
fn lock_rank(name: &str) -> Option<u32> {
    match name {
        "table" | "state" | "lanes" => Some(10),
        "deque" | "deques" => Some(12),
        "bases" | "keys" => Some(20),
        "pending" => Some(25),
        "shard" | "shards" => Some(30),
        "seeded" => Some(40),
        "ring" => Some(50),
        "recorder" => Some(55),
        _ => None,
    }
}

/// Internal rank of a method call that takes locks inside the callee, by the
/// receiver component: calling into these while holding an equal-or-higher
/// lock reverses the documented order inside the callee.
fn callee_rank(receiver: &str, method: &str) -> Option<u32> {
    match receiver {
        "flight" | "gate" => Some(10),
        "running" if matches!(method, "submit" | "counters" | "cancel_lane") => Some(10),
        "ledger" => Some(20),
        "idle" | "idle_latch" => Some(25),
        "cache" if method == "mark_class_seeded" => Some(40),
        "cache" => Some(30),
        _ => None,
    }
}

/// Walks backwards over a path expression (`self.shard(key)`, `shared.cache`)
/// ending at byte `end` and returns its final *named* component.
fn receiver_component(code: &str, end: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = end;
    loop {
        // Skip a trailing index/call group: `(...)` or `[...]`.
        while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let close = bytes[i - 1];
            let open = if close == b')' { b'(' } else { b'[' };
            let mut depth = 0i64;
            while i > 0 {
                i -= 1;
                if bytes[i] == close {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
        let word_end = i;
        while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i -= 1;
        }
        if i < word_end {
            let word = &code[i..word_end];
            if word != "self" {
                return Some(word.to_string());
            }
        }
        // `self` (or a group with no name): keep walking across `.` joins.
        if i > 0 && bytes[i - 1] == b'.' {
            i -= 1;
        } else {
            return None;
        }
    }
}

/// A lock guard currently held while scanning a function body.
struct Held {
    rank: u32,
    name: String,
    depth: i64,
}

/// Detects reversed acquisitions against the documented lock order.  Guard
/// lifetimes are tracked heuristically: a `let`-bound `.lock()/.read()/
/// .write()` whose call is not immediately chained lives to the end of its
/// block (or an explicit `drop(name)`); a chained call is instantaneous.
fn rule_lock_order(path: &Path, lines: &[Line], mask: &[bool], out: &mut Vec<Violation>) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    for (n, line) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        let code = &line.code;
        let check = |held: &[Held], rank: u32, what: &str, out: &mut Vec<Violation>| {
            for h in held.iter() {
                if h.rank >= rank {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: n + 1,
                        rule: "lock-order",
                        message: format!(
                            "acquiring rank-{rank} lock via `{what}` while holding rank-{} \
                             guard `{}` — documented order is admission/lanes(10) < \
                             worker deques(12) < ledger/bases(20) < background-idle(25) < \
                             cache shards(30) < seeded(40) < trace ring(50), strictly \
                             ascending",
                            h.rank, h.name
                        ),
                    });
                }
            }
        };
        // Callee acquisitions first — RECEIVER.method(...) where the callee
        // locks internally.  These run before any guard bound on this line
        // exists (`let g = cache.shard(k).write()` calls into the cache
        // before the guard is live), so they check against locks held from
        // *earlier* lines only.
        let mut from = 0;
        while let Some(pos) = code[from..].find('.') {
            let at = from + pos;
            from = at + 1;
            let rest = &code[at + 1..];
            let method: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if method.is_empty() || !rest[method.len()..].starts_with('(') {
                continue;
            }
            if matches!(method.as_str(), "lock" | "read" | "write") {
                continue; // handled below as a direct acquisition
            }
            let Some(receiver) = receiver_component(code, at) else { continue };
            if let Some(rank) = callee_rank(&receiver, &method) {
                check(&held, rank, &format!("{receiver}.{method}()"), out);
            }
        }
        // Direct acquisitions: RECEIVER.lock() / .read() / .write().
        for method in [".lock(", ".read(", ".write("] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(method) {
                let at = from + pos;
                from = at + method.len();
                let Some(receiver) = receiver_component(code, at) else { continue };
                let Some(rank) = lock_rank(&receiver) else { continue };
                check(&held, rank, &format!("{receiver}{}", method.trim_end_matches('(')), out);
                // A chained call (`.lock().get(..)`) is a temporary guard;
                // only a plain `let`-bound one is held.
                let after = code[at + method.len()..].trim_start();
                let chained = after.starts_with(')') && after[1..].trim_start().starts_with('.');
                let is_let = code.trim_start().starts_with("let ");
                if is_let && !chained {
                    let name = code
                        .trim_start()
                        .trim_start_matches("let ")
                        .trim_start_matches("mut ")
                        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .next()
                        .unwrap_or("")
                        .to_string();
                    held.push(Held { rank, name, depth });
                }
            }
        }
        // Explicit drops release the named guard early.
        for at in token_positions(code, "drop") {
            let rest = code[at + 4..].trim_start();
            if let Some(arg) = rest.strip_prefix('(') {
                let name: String = arg
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                held.retain(|h| h.name != name);
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        held.retain(|h| h.depth <= depth);
    }
}

// ---------------------------------------------------------------------------
// Rule: worker-entry
// ---------------------------------------------------------------------------

/// Functions marked `// lint: worker-entry` run user-triggered work on pool
/// workers: every call site must sit under a `catch_unwind` wrapper (same
/// line or within the two preceding lines) so a panic cannot shrink the pool.
fn rule_worker_entry(files: &[(PathBuf, Vec<Line>, Vec<bool>)], out: &mut Vec<Violation>) {
    // Pass 1: collect marked function names across the scanned set.
    let mut entries: Vec<String> = Vec::new();
    for (_, lines, _) in files {
        for (n, line) in lines.iter().enumerate() {
            if !line.comment.contains("lint: worker-entry") {
                continue;
            }
            for follow in lines.iter().skip(n + 1).take(3) {
                if let Some(pos) = follow.code.find("fn ") {
                    let name: String = follow.code[pos + 3..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        entries.push(name);
                    }
                    break;
                }
            }
        }
    }
    // Pass 2: every call site of a marked function needs catch_unwind nearby.
    for (path, lines, mask) in files {
        for (n, line) in lines.iter().enumerate() {
            if mask[n] {
                continue;
            }
            for name in &entries {
                for at in token_positions(&line.code, name) {
                    let rest = &line.code[at + name.len()..];
                    if !rest.starts_with('(') {
                        continue;
                    }
                    // The declaration itself is not a call site.
                    if line.code[..at].trim_end().ends_with("fn") {
                        continue;
                    }
                    let wrapped =
                        (n.saturating_sub(2)..=n).any(|m| lines[m].code.contains("catch_unwind"));
                    if !wrapped {
                        out.push(Violation {
                            file: path.clone(),
                            line: n + 1,
                            rule: "worker-entry",
                            message: format!(
                                "worker-entry fn `{name}` called without a `catch_unwind` \
                                 wrapper — a panicking job would kill the pool worker"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: forbid-unsafe
// ---------------------------------------------------------------------------

/// Every crate root must forbid unsafe code (or deny it with a waiver).
fn rule_forbid_unsafe(path: &Path, source: &str, out: &mut Vec<Violation>) {
    // Strip comments first so a doc comment *mentioning* the attribute
    // doesn't satisfy the rule.
    let lines = strip(source);
    let has = |needle: &str| lines.iter().any(|l| l.code.contains(needle));
    if has("#![forbid(unsafe_code)]") {
        return;
    }
    if has("#![deny(unsafe_code)]")
        && lines.iter().any(|l| l.comment.contains("lint: allow(deny-unsafe)"))
    {
        return;
    }
    out.push(Violation {
        file: path.to_path_buf(),
        line: 1,
        rule: "forbid-unsafe",
        message: "crate root lacks `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` with \
                  `// lint: allow(deny-unsafe)`)"
            .into(),
    });
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else { return out };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Loads and pre-lexes every file in `dirs` (each relative to `root`).
fn load(root: &Path, dirs: &[&str]) -> Vec<(PathBuf, Vec<Line>, Vec<bool>)> {
    let mut out = Vec::new();
    for dir in dirs {
        for path in rust_files(&root.join(dir)) {
            let Ok(source) = fs::read_to_string(&path) else { continue };
            let lines = strip(&source);
            let mask = test_mask(&lines);
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push((rel, lines, mask));
        }
    }
    out
}

/// Crate roots of the workspace: `src/lib.rs` / `src/main.rs` one level under
/// each of `crates/`, `shims/`, `tools/`.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for family in ["crates", "shims", "tools"] {
        let Ok(entries) = fs::read_dir(root.join(family)) else { continue };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for dir in entries {
            for name in ["src/lib.rs", "src/main.rs"] {
                let candidate = dir.join(name);
                if candidate.is_file() {
                    out.push(candidate);
                }
            }
        }
    }
    out
}

/// Lints the whole workspace rooted at `root`; returns every violation.
fn lint_workspace(root: &Path) -> (usize, Vec<Violation>) {
    let mut violations = Vec::new();
    let mut checked = 0usize;

    // Serving-core rules: service + scheduler + runtime sources.
    let core = load(root, &["crates/service/src", "crates/sched/src", "crates/runtime/src"]);
    checked += core.len();
    for (path, lines, mask) in &core {
        rule_no_panics(path, lines, mask, &mut violations);
        if path.starts_with("crates/service") || path.starts_with("crates/sched") {
            rule_lock_order(path, lines, mask, &mut violations);
        }
    }
    rule_worker_entry(&core, &mut violations);

    // Memory-ordering rule: every first-party crate, excluding integration
    // test and bench trees (test-only orderings guard no production
    // invariant, matching the `#[cfg(test)]` exemption elsewhere).
    let crates = load(root, &["crates"]);
    checked += crates.len();
    for (path, lines, mask) in &crates {
        let test_tree =
            path.components().any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches");
        if !test_tree {
            rule_relaxed(path, lines, mask, &mut violations);
        }
    }

    // Crate-root rule: the whole workspace.
    for path in crate_roots(root) {
        let Ok(source) = fs::read_to_string(&path) else { continue };
        checked += 1;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        rule_forbid_unsafe(&rel, &source, &mut violations);
    }

    (checked, violations)
}

/// Runs each rule against its seeded fixture and verifies it *fires* — the
/// linter proving it still catches what it claims to catch.
fn self_test(root: &Path) -> Result<(), String> {
    let fixtures = root.join("tools/steady-lint/fixtures");
    let expect: BTreeMap<&str, &str> = BTreeMap::from([
        ("bad_panics.rs", "no-panics"),
        ("bad_relaxed.rs", "relaxed-justified"),
        ("bad_lock_order.rs", "lock-order"),
        ("bad_worker_entry.rs", "worker-entry"),
        ("bad_unsafe.rs", "forbid-unsafe"),
        ("clean.rs", ""),
    ]);
    for (fixture, rule) in expect {
        let path = fixtures.join(fixture);
        let source = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let lines = strip(&source);
        let mask = test_mask(&lines);
        let mut found = Vec::new();
        rule_no_panics(&path, &lines, &mask, &mut found);
        rule_relaxed(&path, &lines, &mask, &mut found);
        rule_lock_order(&path, &lines, &mask, &mut found);
        let set = vec![(path.clone(), lines, mask)];
        rule_worker_entry(&set, &mut found);
        rule_forbid_unsafe(&path, &source, &mut found);
        if rule.is_empty() {
            // The clean fixture must pass every rule (it carries its own
            // forbid attribute, waivers and justifications).
            if !found.is_empty() {
                return Err(format!(
                    "{fixture}: expected clean, got {:?}",
                    found.iter().map(|v| v.rule).collect::<Vec<_>>()
                ));
            }
        } else if !found.iter().any(|v| v.rule == rule) {
            return Err(format!(
                "{fixture}: rule `{rule}` did not fire (got {:?})",
                found.iter().map(|v| v.rule).collect::<Vec<_>>()
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let root = match std::env::var("STEADY_LINT_ROOT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
        }
    };
    // Debug aid: `--dump FILE` prints the stripped view with line numbers so
    // strip() drift can be spotted against the real file.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--dump") {
        if let Some(file) = args.get(i + 1) {
            // lint: allow(panics) — debug path, not part of the gate.
            let source = fs::read_to_string(file).expect("readable file");
            for (n, line) in strip(&source).iter().enumerate() {
                println!("{:4} |{}|{}|", n + 1, line.code, line.comment);
            }
            return ExitCode::SUCCESS;
        }
    }
    if std::env::args().any(|a| a == "--self-test") {
        return match self_test(&root) {
            Ok(()) => {
                println!("steady-lint self-test: every rule fires on its seeded fixture");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("steady-lint self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (checked, violations) = lint_workspace(&root);
    if violations.is_empty() {
        println!("steady-lint: {checked} files checked, 0 violations");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{}:{}: [{}] {}", v.file.display(), v.line, v.rule, v.message);
    }
    eprintln!("steady-lint: {checked} files checked, {} violation(s)", violations.len());
    ExitCode::FAILURE
}
