//! Seeded violation: a crate root with no `#![forbid(unsafe_code)]` (and no
//! waived `#![deny(unsafe_code)]`).
//! Not compiled — consumed by `steady-lint --self-test` as text.

fn main() {}
