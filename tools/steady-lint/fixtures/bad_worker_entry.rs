//! Seeded violation: a worker-entry function called without `catch_unwind`.
//! Not compiled — consumed by `steady-lint --self-test` as text.

#![forbid(unsafe_code)]

// lint: worker-entry
fn handle_job(job: u32) -> u32 {
    job + 1
}

fn naked_call_site(job: u32) -> u32 {
    handle_job(job)
}

fn wrapped_call_site(job: u32) {
    // Must NOT fire: wrapped within the two preceding lines.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_job(job);
    }));
}
