//! The clean fixture: exercises every rule's happy path and must produce
//! zero violations — waivers, justifications, test-gating, ascending lock
//! order and the forbid attribute all in one file.
//! Not compiled — consumed by `steady-lint --self-test` as text.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

// lint: worker-entry
fn run_job(job: u32) -> u32 {
    job * 2
}

fn pool_worker(job: u32, counter: &AtomicU64) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(job)));
    // relaxed: a monotonic tally read only by snapshots.
    counter.fetch_add(1, Ordering::Relaxed);
}

fn ascending_locks(flight: &Flight, cache: &Cache) {
    let table = flight.table.lock();
    let shard = cache.shard(7).read();
    let _ = (table.len(), shard.len());
}

fn fail_fast(input: Option<u32>) -> u32 {
    // lint: allow(panics) — startup fail-fast, documented.
    input.expect("configured at startup")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::run_job(2), 4);
        Option::<u32>::None.unwrap_or(0);
        Some(5).unwrap();
    }
}
