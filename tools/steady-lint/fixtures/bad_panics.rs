//! Seeded violation: an unwaived `.unwrap()` in production code.
//! Not compiled — consumed by `steady-lint --self-test` as text.

#![forbid(unsafe_code)]

fn production_path(input: Option<u32>) -> u32 {
    // The string below must not mask the real violation: ".unwrap()".
    input.unwrap()
}

fn waived_path(input: Option<u32>) -> u32 {
    // lint: allow(panics) — this one is waived and must NOT fire.
    input.expect("waived")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
