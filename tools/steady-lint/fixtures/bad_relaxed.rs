//! Seeded violation: an unjustified `Ordering::Relaxed`.
//! Not compiled — consumed by `steady-lint --self-test` as text.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

fn unjustified(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn justified(counter: &AtomicU64) {
    // relaxed: a monotonic tally read only by snapshots; must NOT fire.
    counter.fetch_add(1, Ordering::Relaxed);
}
