//! Seeded violation: a reversed lock acquisition — the cache shard lock
//! (rank 30) is held while taking the single-flight admission lock (rank
//! 10), the exact deadlock the documented order forbids.
//! Not compiled — consumed by `steady-lint --self-test` as text.

#![forbid(unsafe_code)]

fn reversed(cache: &Cache, flight: &Flight) {
    let mut shard = cache.shard(7).write();
    let table = flight.table.lock();
    shard.insert(7, table.len());
}

fn ascending(flight: &Flight, cache: &Cache) {
    // The documented direction — admission before shards; must NOT fire.
    let table = flight.table.lock();
    let shard = cache.shard(7).read();
    let _ = (table.len(), shard.len());
}
