//! # steady-collectives
//!
//! A reproduction of *"Optimizing the steady-state throughput of scatter and
//! reduce operations on heterogeneous platforms"* (A. Legrand, L. Marchal,
//! Y. Robert — IPDPS 2004, INRIA research report RR-4872), packaged as a
//! workspace of focused crates and re-exported here as a single facade.
//!
//! Given a heterogeneous platform graph operated under the one-port,
//! full-overlap model, the library computes the **optimal steady-state
//! throughput** of pipelined series of scatter, personalized all-to-all
//! (gossip) and reduce operations, and constructs explicit periodic schedules
//! that achieve it — all in exact rational arithmetic, with asymptotic
//! optimality guarantees.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Content |
//! |---|---|---|
//! | [`rational`] | `steady-rational` | BigInt / exact rational arithmetic |
//! | [`lp`] | `steady-lp` | LP modelling, f64 + exact simplex, certification |
//! | [`platform`] | `steady-platform` | Platform graphs, topology generators, paper instances |
//! | [`core`] | `steady-core` | Scatter / gather / gossip / reduce / prefix LPs, schedules, reduction trees |
//! | [`sim`] | `steady-sim` | One-port discrete-event simulation, Prop.-1 executor |
//! | [`baselines`] | `steady-baselines` | Direct/binomial scatter, gather, flat/binomial/chain reduces |
//! | [`runtime`] | `steady-runtime` | Threaded message-passing execution with real payloads |
//! | [`drift`] | `steady-drift` | Cost-drift models (bounded random walks) and basis-reuse triage: in-range re-pricing, dual-simplex repair, warm/cold resolve |
//! | [`forecast`] | `steady-forecast` | Speculative pre-solving: exact drift envelopes, zero-pivot survival certification (`WillHold`/`MayExit`/`WillExit`), ranked presolve plans |
//! | [`service`] | `steady-service` | Query serving: canonical fingerprints, sharded cache with TTL epochs and drift-aware eviction, single-flight worker pool, drift-triaged solves, idle-time prefetching, requeue admission, snapshot persistence |
//!
//! ## Quick start
//!
//! ```
//! use steady_collectives::prelude::*;
//!
//! // Figure 2 of the paper: one source scattering to two targets.
//! let problem = ScatterProblem::from_instance(figure2()).unwrap();
//! let solution = problem.solve().unwrap();
//! assert_eq!(*solution.throughput(), rat(1, 2));
//!
//! let schedule = solution.build_schedule(&problem).unwrap();
//! schedule.validate(problem.platform()).unwrap();
//! println!("{}", schedule.render(problem.platform()));
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `crates/bench` benchmarks for the reproduction of every figure of the
//! paper's evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use steady_baselines as baselines;
pub use steady_core as core;
pub use steady_drift as drift;
pub use steady_forecast as forecast;
pub use steady_lp as lp;
pub use steady_platform as platform;
pub use steady_rational as rational;
pub use steady_runtime as runtime;
pub use steady_service as service;
pub use steady_sim as sim;

/// Commonly used items, for `use steady_collectives::prelude::*`.
pub mod prelude {
    pub use steady_baselines::{
        binomial_reduce, binomial_scatter, chain_reduce, direct_gather, direct_gossip,
        direct_scatter, flat_tree_reduce, measure_pipelined_throughput,
    };
    pub use steady_core::analysis::{
        analyze_gather, analyze_reduce, analyze_scatter, OccupationReport, Resource,
    };
    pub use steady_core::approx::{approximate_for_period, build_fixed_period_schedule};
    pub use steady_core::bounds::SteadyStateBounds;
    pub use steady_core::gather::GatherProblem;
    pub use steady_core::gossip::GossipProblem;
    pub use steady_core::prefix::PrefixProblem;
    pub use steady_core::problem::{solve_steady, solve_steady_warm, SolveReport, SteadyProblem};
    pub use steady_core::reduce::ReduceProblem;
    pub use steady_core::scatter::ScatterProblem;
    pub use steady_core::schedule::PeriodicSchedule;
    pub use steady_core::CoreError;
    pub use steady_drift::{
        solve_steady_triaged, DriftConfig, DriftModel, DriftStats, Triage, TriageReport,
    };
    pub use steady_forecast::{
        ClassFate, ForecastConfig, Forecaster, PlannedSolve, PredictedTriage, PresolvePlan,
    };
    pub use steady_lp::{
        basis_still_optimal, objective_ranging, rhs_ranging, solve_dual_with_basis,
        solve_with_basis, CostRange, DualOutcome, RhsRange, SolvedBasis,
    };
    pub use steady_platform::generators::{
        figure2, figure5, figure6, figure9, tiers_reduce_instance, tiers_scatter_instance,
        RandomConfig, TiersConfig,
    };
    pub use steady_platform::topologies::{
        dumbbell_gather_instance, fat_tree_reduce_instance, fat_tree_scatter_instance,
        hypercube_prefix_instance, ring_gossip_instance, FatTreeConfig, GeometricConfig,
    };
    pub use steady_platform::{NodeId, Platform};
    pub use steady_rational::{int, rat, BigInt, Ratio};
    pub use steady_runtime::{run_gather, run_reduce, run_scatter, RunConfig};
    pub use steady_service::{
        fingerprint, run_drift_load, run_forecast_load, run_load, structural_fingerprint,
        Collective, DriftLoadConfig, DriftReport, ForecastLoadConfig, ForecastReport, LoadConfig,
        PrefetchJob, Query, ServeError, Served, ServedVia, Service, ServiceConfig, ServiceStats,
    };
    pub use steady_sim::{execute_reduce_schedule, execute_scatter_schedule, parallel_map};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        assert_eq!(*solution.throughput(), rat(1, 2));
    }
}
