//! Failure-injection integration tests: malformed platforms and degenerate
//! problems must be rejected with meaningful errors rather than producing
//! nonsense schedules.

use steady_collectives::prelude::*;
use steady_platform::{EdgeId, PlatformError};

#[test]
fn zero_cost_link_is_rejected() {
    let mut p = Platform::new();
    let a = p.add_node("a", rat(1, 1));
    let b = p.add_node("b", rat(1, 1));
    p.add_edge(a, b, rat(0, 1));
    assert_eq!(p.validate(), Err(PlatformError::NonPositiveCost { edge: EdgeId(0) }));
    // Problem constructors propagate the platform error.
    assert!(matches!(ScatterProblem::new(p.clone(), a, vec![b]), Err(CoreError::Platform(_))));
    assert!(matches!(
        ReduceProblem::new(p, vec![a, b], a, rat(1, 1), rat(1, 1)),
        Err(CoreError::Platform(_))
    ));
}

#[test]
fn negative_speed_is_rejected() {
    let mut p = Platform::new();
    p.add_node("a", rat(-1, 1));
    assert!(matches!(p.validate(), Err(PlatformError::NegativeSpeed { .. })));
}

#[test]
fn disconnected_scatter_target_is_rejected() {
    let mut p = Platform::new();
    let a = p.add_node("a", rat(1, 1));
    let b = p.add_node("b", rat(1, 1));
    let c = p.add_node("c", rat(1, 1));
    p.add_edge(a, b, rat(1, 1));
    // c is unreachable from a.
    assert!(matches!(ScatterProblem::new(p, a, vec![b, c]), Err(CoreError::Unreachable { .. })));
}

#[test]
fn one_way_link_reduce_is_rejected_when_target_cannot_be_reached() {
    // Participants can only be reached FROM the target, not reach it.
    let mut p = Platform::new();
    let t = p.add_node("t", rat(1, 1));
    let x = p.add_node("x", rat(1, 1));
    p.add_edge(t, x, rat(1, 1)); // only t -> x
    assert!(matches!(
        ReduceProblem::new(p, vec![t, x], t, rat(1, 1), rat(1, 1)),
        Err(CoreError::Unreachable { .. })
    ));
}

#[test]
fn router_only_platform_cannot_reduce() {
    let mut p = Platform::new();
    let r1 = p.add_router("r1");
    let r2 = p.add_router("r2");
    p.add_link(r1, r2, rat(1, 1));
    assert!(matches!(
        ReduceProblem::new(p, vec![r1, r2], r1, rat(1, 1), rat(1, 1)),
        Err(CoreError::NotAComputeNode { .. })
    ));
}

#[test]
fn gossip_with_no_commodities_is_rejected() {
    let mut p = Platform::new();
    let a = p.add_node("a", rat(1, 1));
    assert!(matches!(GossipProblem::new(p, vec![a], vec![a]), Err(CoreError::EmptyProblem)));
}

#[test]
fn corrupt_platform_text_is_rejected() {
    for text in [
        "node a",                         // missing speed
        "node a one",                     // invalid speed
        "edge 0 1 1",                     // edge before nodes exist
        "node a 1\nedge 0 5 1",           // unknown destination
        "frob a b c",                     // unknown keyword
        "node a 1\nnode b 1\nedge 0 1 0", // zero cost caught by validate()
    ] {
        assert!(Platform::from_text(text).is_err(), "accepted: {text}");
    }
}

#[test]
fn fixed_period_rejects_non_positive_periods() {
    let problem = ReduceProblem::from_instance(figure6()).unwrap();
    let solution = problem.solve().unwrap();
    let trees = solution.extract_trees(&problem).unwrap();
    assert!(matches!(approximate_for_period(&trees, &rat(0, 1)), Err(CoreError::InvalidPeriod)));
    assert!(matches!(approximate_for_period(&trees, &rat(-1, 2)), Err(CoreError::InvalidPeriod)));
}

#[test]
fn simulator_rejects_transfers_on_missing_links() {
    use steady_sim::{simulate, Dag, SimError};
    let mut p = Platform::new();
    let a = p.add_node("a", rat(1, 1));
    let b = p.add_node("b", rat(1, 1));
    // no link a -> b
    let mut dag = Dag::new();
    dag.transfer(a, b, rat(1, 1), vec![]);
    assert!(matches!(simulate(&p, &dag), Err(SimError::MissingLink { .. })));
}

#[test]
fn schedule_validation_catches_tampering() {
    let problem = ScatterProblem::from_instance(figure2()).unwrap();
    let solution = problem.solve().unwrap();
    let mut schedule = solution.build_schedule(&problem).unwrap();
    schedule.validate(problem.platform()).unwrap();
    // Tamper: shrink the period below the scheduled communication time.
    schedule.period = rat(1, 100);
    assert!(schedule.validate(problem.platform()).is_err());
}

#[test]
fn infeasible_lp_reports_infeasible_not_panic() {
    use steady_lp::{LinearExpr, LpProblem, Sense, SimplexError};
    let mut lp = LpProblem::maximize();
    let x = lp.add_var("x");
    lp.set_objective(x, rat(1, 1));
    lp.add_constraint("lo", LinearExpr::var(x), Sense::Ge, rat(2, 1));
    lp.add_constraint("hi", LinearExpr::var(x), Sense::Le, rat(1, 1));
    assert_eq!(steady_lp::solve_exact(&lp).unwrap_err(), SimplexError::Infeasible);
}
