//! Cross-crate property-based tests for the extension modules: gather
//! (transpose duality), parallel prefix (bracketing and schedules) and the
//! threaded message-passing runtime (end-to-end data correctness).

use proptest::prelude::*;
use steady_collectives::prelude::*;
use steady_platform::generators::{self, RandomConfig};

fn random_platform(seed: u64, nodes: usize, extra: f64) -> Platform {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let config = RandomConfig {
        nodes,
        extra_link_probability: extra,
        bandwidth_range: (1, 6),
        speed_range: (1, 8),
    };
    generators::random_connected(&config, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Gather: the exact solution verifies, the schedule is one-port feasible
    /// and achieves TP, and the transpose-dual scatter problem has exactly the
    /// same optimum (TP_gather(G) = TP_scatter(Gᵀ)).
    #[test]
    fn gather_duality_and_schedule(seed in 0u64..5000, nodes in 3usize..7, sources in 1usize..4) {
        let platform = random_platform(seed, nodes, 0.3);
        let all: Vec<NodeId> = platform.node_ids().collect();
        let sink = all[0];
        let sources: Vec<NodeId> = all.iter().copied().skip(1).take(sources).collect();
        prop_assume!(!sources.is_empty());

        let problem = GatherProblem::new(platform, sources, sink).unwrap();
        let solution = problem.solve().unwrap();
        prop_assert!(solution.throughput().is_positive());
        solution.verify(&problem).unwrap();

        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        prop_assert_eq!(schedule.throughput(), solution.throughput().clone());

        let dual = problem.dual_scatter().unwrap();
        let dual_solution = dual.solve().unwrap();
        prop_assert_eq!(dual_solution.throughput().clone(), solution.throughput().clone());
    }

    /// Prefix: the shared-capacity LP is feasible (verifies), never exceeds
    /// the single-rank reduce upper bound, and its aggregated schedule is
    /// one-port feasible with the same throughput.
    #[test]
    fn prefix_bracketing_and_schedule(seed in 0u64..5000, nodes in 3usize..6) {
        let platform = random_platform(seed, nodes, 0.4);
        let compute: Vec<NodeId> = platform.compute_nodes();
        prop_assume!(compute.len() >= 3);
        let participants = vec![compute[0], compute[1], compute[2]];

        let problem = PrefixProblem::new(platform, participants, rat(1, 1), rat(1, 1)).unwrap();
        let solution = problem.solve().unwrap();
        prop_assert!(solution.throughput().is_positive());
        solution.verify(&problem).unwrap();

        let upper = problem.upper_bound().unwrap();
        prop_assert!(*solution.throughput() <= upper,
            "prefix TP {} exceeds the single-rank bound {}", solution.throughput(), upper);

        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        prop_assert_eq!(schedule.throughput(), solution.throughput().clone());
    }

    /// Threaded scatter execution on random platforms: no data-level errors,
    /// never more completions than injections, and a warm pipeline completes a
    /// sizeable fraction of the injected operations.
    #[test]
    fn threaded_scatter_is_correct(seed in 0u64..2000, nodes in 3usize..6, targets in 1usize..3) {
        let platform = random_platform(seed, nodes, 0.3);
        let all: Vec<NodeId> = platform.node_ids().collect();
        let source = all[0];
        let targets: Vec<NodeId> = all.iter().copied().skip(1).take(targets).collect();
        prop_assume!(!targets.is_empty());

        let problem = ScatterProblem::new(platform, source, targets).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 10, drain_periods: 8 };
        let report = run_scatter(&problem, &schedule, config).unwrap();

        prop_assert!(report.errors.is_empty(), "data errors: {:?}", report.errors);
        let injected = config.production_periods * report.operations_per_period;
        prop_assert!(report.completed_operations <= injected);
        prop_assert!(report.completed_operations * 2 >= injected,
            "only {} of {} operations completed (seed {seed})",
            report.completed_operations, injected);
    }

    /// Threaded reduce execution on random platforms: every delivered result
    /// is the correctly ordered reduction of a single operation.
    #[test]
    fn threaded_reduce_is_correct(seed in 0u64..2000, nodes in 3usize..5) {
        let platform = random_platform(seed, nodes, 0.4);
        let compute: Vec<NodeId> = platform.compute_nodes();
        prop_assume!(compute.len() >= 2);
        let participants: Vec<NodeId> = compute.iter().copied().take(3.min(compute.len())).collect();
        let target = participants[0];

        let problem = ReduceProblem::new(platform, participants, target, rat(1, 1), rat(1, 1)).unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        let config = RunConfig { production_periods: 10, drain_periods: 10 };
        let report = run_reduce(&problem, &trees, config).unwrap();

        prop_assert!(report.errors.is_empty(), "data errors: {:?}", report.errors);
        prop_assert_eq!(report.correct_results, report.completed_operations);
        prop_assert!(report.completed_operations > 0,
            "nothing completed after {} periods (seed {seed})", report.periods);
    }
}

#[test]
fn gather_on_fat_tree_and_prefix_on_figure6_work_through_the_facade() {
    // Deterministic end-to-end smoke test of the new prelude exports.
    let gather = GatherProblem::from_instance(dumbbell_gather_instance(2, rat(1, 2), rat(1, 1)))
        .expect("valid gather instance");
    let gsol = gather.solve().expect("gather LP solves");
    gsol.verify(&gather).expect("gather solution verifies");

    let scatter =
        ScatterProblem::from_instance(fat_tree_scatter_instance(&FatTreeConfig::default()))
            .expect("valid scatter instance");
    let ssol = scatter.solve().expect("scatter LP solves");
    assert!(ssol.throughput().is_positive());

    let reduce = ReduceProblem::from_instance(fat_tree_reduce_instance(&FatTreeConfig {
        leaf_switches: 2,
        spine_switches: 1,
        hosts_per_leaf: 2,
        ..FatTreeConfig::default()
    }))
    .expect("valid reduce instance");
    let rsol = reduce.solve().expect("reduce LP solves");
    rsol.verify(&reduce).expect("reduce solution verifies");

    let ring = ring_gossip_instance(4, rat(1, 1));
    let gossip = GossipProblem::new(ring.platform, ring.sources, ring.targets)
        .expect("valid gossip problem");
    assert!(gossip.solve().expect("gossip LP solves").throughput().is_positive());
}
