//! End-to-end acceptance of the speculative pre-solving subsystem: the
//! forecaster's plan, the service's idle-time prefetch loop, drift-aware
//! eviction and exactness of every speculative answer.

use std::time::Duration;

use steady_collectives::prelude::*;

fn scatter_query(platform: Platform, source: NodeId, targets: &[NodeId]) -> Query {
    Query { platform, collective: Collective::Scatter { source, targets: targets.to_vec() } }
}

/// An exhaustive one-step plan on an always-moving walk contains the next
/// platform by construction, so the drifted query must land as a cache hit
/// with a `Ratio`-exact answer.
#[test]
fn exhaustive_plans_turn_drift_into_cache_hits() {
    let instance = figure2();
    let (source, targets) = (instance.source, instance.targets.clone());
    let config = DriftConfig { grid: 2, min_num: 1, max_num: 4, move_probability: 1.0 };
    let mut model = DriftModel::new(instance.platform, config, 7);

    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let base = service.query(scatter_query(model.current(), source, &targets)).unwrap();
    assert_eq!(base.via, ServedVia::Solve);
    let class = scatter_query(model.current(), source, &targets).structural_fingerprint().0;
    let basis = service.class_basis(class).expect("demand solve published the class basis");

    let forecaster = Forecaster::new(ForecastConfig {
        horizon: 1,
        max_candidates: usize::MAX,
        max_states: 1 << 12,
    });
    for round in 0..3 {
        let basis = service.class_basis(class).unwrap_or_else(|| basis.clone());
        let plan = forecaster
            .forecast(&model, |p| ScatterProblem::new(p, source, targets.clone()), &basis)
            .unwrap();
        assert!(plan.exhaustive, "a 5-edge one-step envelope is enumerable");
        let scheduled = service.schedule_prefetch(plan.candidates.iter().map(|c| PrefetchJob {
            query: scatter_query(c.platform.clone(), source, &targets),
            predicted_exit: c.expected == PredictedTriage::Repair,
        }));
        assert_eq!(scheduled, plan.candidates.len());
        assert!(service.await_prefetch_idle(Duration::from_secs(60)), "backlog drained");

        let drifted = scatter_query(model.step(), source, &targets);
        let served = service.query(drifted.clone()).unwrap();
        assert_eq!(
            served.via,
            ServedVia::Cache,
            "round {round}: an exhaustively planned step must be prefetched"
        );
        // Bit-identical to an independent cold solve.
        let cold = ScatterProblem::new(drifted.platform.clone(), source, targets.clone())
            .unwrap()
            .solve()
            .unwrap();
        assert_eq!(&served.answer.throughput, cold.throughput());
    }

    let stats = service.stats();
    assert_eq!(stats.prefetch_hits, 3, "every round landed: {stats:?}");
    assert_eq!(stats.solves, 1, "only the base platform ever hit the demand-solve path");
    assert!(stats.prefetched >= 3);
    assert!(stats.prefetch_hit_fraction() > 0.7, "{stats:?}");
}

/// The full forecast scenario runner: speculative answers land, are exact,
/// and the report's gate numbers are self-consistent.
#[test]
fn forecast_load_run_meets_the_prefetch_gate_shape() {
    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let config = ForecastLoadConfig {
        epochs: 12,
        hits_per_epoch: 2,
        seed: 3,
        horizon: 1,
        plan: 16,
        verify: true,
    };
    let report = run_forecast_load(&service, &config).unwrap();
    assert_eq!(report.drifted_queries, 24, "2 scenarios x 12 epochs");
    assert_eq!(report.verified, 24);
    assert_eq!(report.stats.errors, 0);
    assert!(report.stats.prefetched > 0);
    assert!(report.stats.prefetch_hits > 0, "{:?}", report.stats);
    let fraction = report.prefetch_hit_fraction();
    assert!((0.0..=1.0).contains(&fraction));
    assert!(report.stats.prefetch_hits + report.stats.solves > 0, "the fraction has a denominator");
}

/// Drift-aware eviction at the service level: with a tiny cache, the
/// entries whose class has no basis seed are evicted before seeded ones.
#[test]
fn service_eviction_prefers_classless_snapshot_entries() {
    use steady_collectives::service::CacheConfig;

    let dir = std::env::temp_dir().join("steady-forecast-evict-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("warmset_{}.json", std::process::id()));

    // Build a snapshot holding one answer (restored entries carry no class).
    let donor = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let instance = figure2();
    let figure2_query =
        scatter_query(instance.platform.clone(), instance.source, &instance.targets);
    donor.query(figure2_query.clone()).unwrap();
    donor.snapshot(&path).unwrap();
    drop(donor);

    // A 2-entry cache: restore the class-less snapshot entry, then solve two
    // star scatters (same structural class, seeded).  The second insertion
    // must displace the snapshot entry, not the seeded star answer.
    let service = Service::start(
        ServiceConfig {
            workers: 1,
            cache: CacheConfig { capacity: 2, shards: 1 },
            ..ServiceConfig::default()
        }
        .preload(&path),
    );
    let star = |c: i64| {
        let (platform, center, leaves) =
            steady_collectives::platform::generators::heterogeneous_star(&[rat(1, c), rat(1, 3)]);
        scatter_query(platform, center, &leaves)
    };
    let first = service.query(star(2)).unwrap();
    assert_eq!(first.via, ServedVia::Solve);
    // Touch the snapshot entry so it is the *most* recently used: a plain
    // LRU would now evict the seeded star answer instead.
    assert_eq!(service.query(figure2_query.clone()).unwrap().via, ServedVia::Cache);
    let second = service.query(star(4)).unwrap();
    assert_eq!(second.via, ServedVia::Solve);

    let stats = service.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.preferred_evictions, 1, "the class-less entry went first: {stats:?}");
    // Both seeded star answers are still served from cache.
    assert_eq!(service.query(star(2)).unwrap().via, ServedVia::Cache);
    assert_eq!(service.query(star(4)).unwrap().via, ServedVia::Cache);
    // The snapshot entry is gone: re-asking figure2 solves again.
    assert_eq!(service.query(figure2_query).unwrap().via, ServedVia::Solve);
    std::fs::remove_file(&path).ok();
}
