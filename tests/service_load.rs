//! Acceptance load test of the serving subsystem: a repetition-heavy mix of
//! 1,000 queries across 4 worker threads and 4 clients must be served mostly
//! from the cache, cached answers must equal cold-solve answers exactly, and
//! the single-flight table must have coalesced at least one query.

use steady_collectives::service::{
    query_mix, run_load, solve_query, Collective, LoadConfig, Query, ServedVia, Service,
    ServiceConfig,
};
use steady_platform::generators::{random_connected, RandomConfig};
use steady_platform::NodeId;
use steady_rational::rat;

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sustained_mixed_load_is_served_from_the_cache() {
    let service = Service::start(ServiceConfig { workers: 4, ..ServiceConfig::default() });
    let load = LoadConfig { queries: 1000, clients: 4, distinct: 21, seed: 11 };
    let report = run_load(&service, &load).expect("every query of the mix solves");

    assert_eq!(report.queries, 1000);
    assert!(
        report.hit_ratio > 0.5,
        "expected a mostly-cached run, got hit ratio {} ({:?})",
        report.hit_ratio,
        report.stats
    );
    // Every query was answered and either hit the cache, was solved cold, or
    // was coalesced onto an in-flight solve.
    let stats = report.stats;
    assert_eq!(stats.queries, 1000);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.hits + stats.misses, stats.queries);
    assert!(stats.solves <= 21, "at most one cold solve per distinct query, got {stats:?}");

    // Cached answers are identical to cold-solve answers: exact rational
    // equality of throughput for every distinct query of the mix.
    for query in query_mix(load.distinct, load.seed) {
        let served = service.query(query.clone()).expect("warm query succeeds");
        assert_eq!(served.via, ServedVia::Cache, "mix queries are all cached by now");
        let cold = solve_query(&query, false).expect("cold solve succeeds");
        assert_eq!(
            served.answer.throughput,
            cold.throughput,
            "cached and cold throughput diverge for a {} query",
            query.collective.kind_name()
        );
    }

    // Single-flight dedup: submit one *fresh* (uncached) moderately expensive
    // query many times at once; exactly one worker may solve it, the other
    // submissions coalesce onto that in-flight solve.
    let config = RandomConfig { nodes: 8, ..RandomConfig::default() };
    let platform = random_connected(&config, &mut StdRng::seed_from_u64(0xfeed));
    let participants: Vec<NodeId> = platform.node_ids().collect();
    let fresh = Query {
        platform,
        collective: Collective::Reduce {
            participants,
            target: NodeId(0),
            size: rat(1, 1),
            task_cost: rat(1, 1),
        },
    };
    let before = service.stats();
    let responses: Vec<_> = (0..16).map(|_| service.submit(fresh.clone())).collect();
    let mut throughputs = Vec::new();
    for response in responses {
        let served = response.recv().expect("service running").expect("solve succeeds");
        throughputs.push(served.answer.throughput.clone());
    }
    assert!(throughputs.windows(2).all(|w| w[0] == w[1]), "all coalesced answers agree");
    let after = service.stats();
    assert!(
        after.coalesced > before.coalesced,
        "single-flight dedup coalesced at least one of the 16 concurrent submissions \
         (before {before:?}, after {after:?})"
    );
}
