//! Workspace bring-up smoke test.
//!
//! Guards the whole rational → LP → core pipeline through the facade: the
//! paper's Figure 2 scatter instance must solve to a steady-state throughput
//! of exactly 1/2, and the periodic schedule built from that solution must
//! validate under the one-port model and achieve the LP throughput.

use steady_collectives::prelude::*;

#[test]
fn figure2_scatter_solves_to_one_half() {
    let problem = ScatterProblem::from_instance(figure2()).expect("figure2 instance is valid");
    let solution = problem.solve().expect("figure2 LP solves");
    assert_eq!(
        *solution.throughput(),
        rat(1, 2),
        "the paper's toy platform sustains one scatter every two time-units"
    );
}

#[test]
fn figure2_schedule_validates_under_one_port_model() {
    let problem = ScatterProblem::from_instance(figure2()).expect("figure2 instance is valid");
    let solution = problem.solve().expect("figure2 LP solves");
    let schedule = solution.build_schedule(&problem).expect("schedule construction succeeds");
    schedule
        .validate(problem.platform())
        .expect("schedule respects the one-port, full-overlap model");
    assert_eq!(
        schedule.throughput(),
        *solution.throughput(),
        "the constructed periodic schedule achieves the LP optimum"
    );
}

#[test]
fn facade_prelude_covers_the_exact_arithmetic_entry_points() {
    // `rat`/`int`/`Ratio`/`BigInt` all come through the prelude and agree.
    assert_eq!(rat(6, 12), rat(1, 2));
    assert_eq!(int(3), rat(3, 1));
    assert_eq!(Ratio::from_frac(1, 2) + Ratio::from_frac(1, 3), rat(5, 6));
    assert_eq!(BigInt::from(6).gcd(&BigInt::from(4)), BigInt::from(2));
}
