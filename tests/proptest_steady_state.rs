//! Cross-crate property-based tests: on random heterogeneous platforms, the
//! whole pipeline (LP -> exact solution -> matchings -> schedule -> simulation)
//! maintains its invariants.

use proptest::prelude::*;
use steady_collectives::prelude::*;
use steady_core::trees::verify_tree_set;
use steady_platform::generators::{self, RandomConfig};
use steady_rational::Ratio;

fn random_platform(seed: u64, nodes: usize, extra: f64) -> Platform {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let config = RandomConfig {
        nodes,
        extra_link_probability: extra,
        bandwidth_range: (1, 6),
        speed_range: (1, 8),
    };
    generators::random_connected(&config, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scatter: the exact solution satisfies every constraint, the schedule is
    /// one-port feasible, achieves the LP throughput, and the simulator never
    /// beats the Lemma-1 bound.
    #[test]
    fn scatter_pipeline_invariants(seed in 0u64..5000, nodes in 3usize..7, targets in 1usize..4) {
        let platform = random_platform(seed, nodes, 0.3);
        let all: Vec<NodeId> = platform.node_ids().collect();
        let source = all[0];
        let targets: Vec<NodeId> = all.iter().copied().skip(1).take(targets).collect();
        prop_assume!(!targets.is_empty());

        let problem = ScatterProblem::new(platform, source, targets).unwrap();
        let solution = problem.solve().unwrap();
        prop_assert!(solution.throughput().is_positive());
        solution.verify(&problem).unwrap();

        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        prop_assert_eq!(schedule.throughput(), solution.throughput().clone());

        let horizon = &Ratio::from(40u64) * &schedule.period;
        let report = execute_scatter_schedule(&problem, &schedule, solution.throughput(), &horizon);
        prop_assert!(report.completed_operations <= report.upper_bound);
        // After 40 periods the pipeline is warm on these small graphs.
        prop_assert!(report.efficiency() > rat(1, 2),
            "efficiency {} too low (seed {seed})", report.efficiency());
    }

    /// Reduce: solution verifies, trees decompose exactly TP, schedules are
    /// feasible, and the simulation respects the upper bound.
    #[test]
    fn reduce_pipeline_invariants(seed in 0u64..5000, nodes in 3usize..6, participants in 2usize..4) {
        let platform = random_platform(seed, nodes, 0.3);
        let compute: Vec<NodeId> = platform.compute_nodes();
        prop_assume!(compute.len() >= participants);
        let participants: Vec<NodeId> = compute.iter().copied().take(participants).collect();
        let target = participants[0];

        let problem = ReduceProblem::new(platform, participants, target, rat(1, 1), rat(1, 1)).unwrap();
        let solution = problem.solve().unwrap();
        prop_assert!(solution.throughput().is_positive());
        solution.verify(&problem).unwrap();

        let trees = solution.extract_trees(&problem).unwrap();
        verify_tree_set(&problem, &solution, &trees).unwrap();

        let schedule = solution.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        prop_assert_eq!(schedule.throughput(), solution.throughput().clone());

        let horizon = &Ratio::from(30u64) * &schedule.period;
        let report = execute_reduce_schedule(&problem, &schedule, solution.throughput(), &horizon);
        prop_assert!(report.completed_operations <= report.upper_bound);
    }

    /// The fixed-period approximation never exceeds the optimum and respects
    /// its own loss bound on random instances.
    #[test]
    fn fixed_period_bound_holds(seed in 0u64..5000, period in 1i64..200) {
        let platform = random_platform(seed, 4, 0.4);
        let compute: Vec<NodeId> = platform.compute_nodes();
        prop_assume!(compute.len() >= 3);
        let participants = vec![compute[0], compute[1], compute[2]];
        let problem = ReduceProblem::new(platform, participants, compute[0], rat(1, 1), rat(1, 1)).unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        let plan = approximate_for_period(&trees, &rat(period, 1)).unwrap();
        prop_assert!(plan.throughput <= *solution.throughput());
        let loss = solution.throughput() - &plan.throughput;
        prop_assert!(loss <= plan.loss_bound);
    }

    /// Baselines never beat the LP optimum (sanity check of Lemma 1 applied to
    /// a very different scheduling strategy).
    #[test]
    fn baselines_respect_upper_bound(seed in 0u64..5000) {
        let platform = random_platform(seed, 5, 0.4);
        let all: Vec<NodeId> = platform.node_ids().collect();
        let problem = ScatterProblem::new(
            platform,
            all[0],
            all.iter().copied().skip(1).take(3).collect(),
        ).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 15;
        let report = measure_pipelined_throughput(
            problem.platform(),
            &direct_scatter(&problem, ops),
            ops,
        ).unwrap();
        prop_assert!(report.throughput <= *optimal.throughput(),
            "baseline {} beats TP {}", report.throughput, optimal.throughput());
    }
}
