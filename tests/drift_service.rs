//! End-to-end acceptance of the drift pipeline through the facade: TTL
//! expiry revalidates instead of evicting, drifted queries triage against
//! the structural class's basis, every path stays exact, and a restarted
//! service's first drifted solve warm-starts from the persisted basis seed.

use steady_collectives::prelude::*;
use steady_collectives::service::solve_query;

fn star_scatter(costs: &[Ratio]) -> Query {
    let (platform, center, leaves) =
        steady_collectives::platform::generators::heterogeneous_star(costs);
    Query { platform, collective: Collective::Scatter { source: center, targets: leaves } }
}

#[test]
fn ttl_revalidation_and_drift_triage_stay_exact() {
    let service =
        Service::start(ServiceConfig { workers: 2, ttl: Some(0), ..ServiceConfig::default() });

    // Walk one star platform through several drift steps; each step is a
    // new cache key in the same structural class.
    let mut model = DriftModel::new(
        star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]).platform,
        DriftConfig::default(),
        17,
    );
    let query_for = |platform: steady_collectives::platform::Platform| {
        let targets: Vec<NodeId> = platform.node_ids().skip(1).collect();
        Query { platform, collective: Collective::Scatter { source: NodeId(0), targets } }
    };

    let mut previous: Option<Query> = None;
    for _ in 0..5 {
        service.advance_epoch();
        let drifted = query_for(model.step());
        let served = service.query(drifted.clone()).unwrap();
        // Exactness: the triaged answer equals an independent cold solve.
        let cold = solve_query(&drifted, false).unwrap();
        assert_eq!(served.answer.throughput, cold.throughput);

        // Re-asking the previous epoch's platform hits the expired entry:
        // revalidated through triage, still exact, entry kept.
        if let Some(previous) = previous.replace(drifted) {
            let revalidated = service.query(previous.clone()).unwrap();
            assert_eq!(revalidated.via, ServedVia::Revalidated);
            let cold = solve_query(&previous, false).unwrap();
            assert_eq!(revalidated.answer.throughput, cold.throughput);
        }
    }

    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    assert!(stats.expired >= 4, "each earlier epoch's probe must expire: {stats:?}");
    assert!(stats.revalidations >= 4, "expired entries revalidate: {stats:?}");
    assert!(stats.triaged >= 5, "drifted + revalidated solves triage: {stats:?}");
    assert!(
        stats.in_range + stats.dual_repairs > 0,
        "a bounded walk must reuse the basis: {stats:?}"
    );
    assert!(
        stats.mean_warm_pivots() <= stats.mean_cold_pivots(),
        "triage must not pivot more than cold solves: {stats:?}"
    );
}

#[test]
fn restarted_service_triages_its_first_drifted_solve_from_the_snapshot() {
    let dir = std::env::temp_dir().join("steady-drift-service-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("snapshot_{}.json", std::process::id()));

    let service = Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let base = star_scatter(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
    service.query(base).unwrap();
    assert!(service.snapshot(&path).unwrap() >= 1);
    drop(service);

    // Fresh process, same snapshot: the first ever solve is a *drifted*
    // sibling (new fingerprint, same structural class) — it must triage
    // against the persisted basis seed rather than resolve cold.
    let restored =
        Service::start(ServiceConfig { workers: 1, ..ServiceConfig::default() }.preload(&path));
    let drifted = star_scatter(&[rat(9, 16), rat(1, 3), rat(1, 4)]);
    let cold = solve_query(&drifted, false).unwrap();
    let served = restored.query(drifted).unwrap();
    assert_eq!(served.answer.throughput, cold.throughput);
    let stats = restored.stats();
    assert_eq!(stats.solves, 1);
    assert_eq!(stats.triaged, 1, "the persisted seed fed the first drifted solve: {stats:?}");
    std::fs::remove_file(&path).unwrap();
}
