//! End-to-end reproduction of the paper's worked figures (integration tests
//! spanning platform generation, LP solving, schedule construction, tree
//! extraction and simulation).

use steady_collectives::prelude::*;
use steady_core::schedule::Payload;
use steady_core::trees::verify_tree_set;
use steady_rational::Ratio;

/// Figure 2: the toy scatter platform achieves TP = 1/2 and the period-12
/// integer solution of the paper is feasible.
#[test]
fn figure2_scatter_throughput_and_schedule() {
    let problem = ScatterProblem::from_instance(figure2()).unwrap();
    let solution = problem.solve().unwrap();
    assert_eq!(*solution.throughput(), rat(1, 2));
    solution.verify(&problem).unwrap();

    // Figures 3/4: the matching decomposition yields a one-port-feasible
    // periodic schedule achieving the same throughput.
    let schedule = solution.build_schedule(&problem).unwrap();
    schedule.validate(problem.platform()).unwrap();
    assert_eq!(schedule.throughput(), rat(1, 2));
    // Communication fits the period on every port (Figure 4: the source is
    // busy 12 time-units out of 12).
    let send_times = schedule.send_time_per_node();
    for (_, t) in send_times {
        assert!(t <= schedule.period);
    }
}

/// Figure 2(b): message routes may split across Pa and Pb; the paper's exact
/// flow assignment is feasible and optimal.
#[test]
fn figure2_multiroute_optimum() {
    let problem = ScatterProblem::from_instance(figure2()).unwrap();
    let solution = problem.solve().unwrap();
    // The source's outgoing port is saturated at the optimum.
    let platform = problem.platform();
    let occupation: Ratio = platform
        .out_edges(problem.source())
        .iter()
        .map(|&e| solution.edge_occupation(&problem, e))
        .sum();
    assert_eq!(occupation, rat(1, 1));
}

/// Figure 5/6: the 3-processor reduce platform achieves TP = 1 and its
/// schedule is feasible; Figure 7: the solution decomposes into reduction
/// trees whose weights sum to TP.
#[test]
fn figure6_reduce_throughput_trees_and_schedule() {
    let problem = ReduceProblem::from_instance(figure6()).unwrap();
    let solution = problem.solve().unwrap();
    assert_eq!(*solution.throughput(), rat(1, 1));
    solution.verify(&problem).unwrap();

    let trees = solution.extract_trees(&problem).unwrap();
    verify_tree_set(&problem, &solution, &trees).unwrap();
    let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
    assert_eq!(total, rat(1, 1));

    let schedule = solution.build_schedule(&problem).unwrap();
    schedule.validate(problem.platform()).unwrap();
    assert_eq!(schedule.throughput(), rat(1, 1));

    // The schedule only ships partial values (no scatter payloads).
    for slot in &schedule.slots {
        for t in &slot.transfers {
            assert!(matches!(t.payload, Payload::Partial { .. }));
        }
    }
    // Computation is spread across the three processors as in Figure 6(c).
    assert!(!schedule.computations.is_empty());
}

/// Figure 5: a single reduction tree on the 3-node clique is structurally valid.
#[test]
fn figure5_single_tree() {
    let problem = ReduceProblem::from_instance(figure5()).unwrap();
    let solution = problem.solve().unwrap();
    assert!(solution.throughput().is_positive());
    let trees = solution.extract_trees(&problem).unwrap();
    for wt in &trees {
        wt.tree.verify(&problem).unwrap();
        // Reducing three values always takes exactly two combining tasks.
        assert_eq!(wt.tree.num_tasks(), 2);
    }
}

/// Proposition 1 (scatter): the concrete periodic schedule with cold buffers
/// approaches the optimal operation count as the horizon grows.
#[test]
fn proposition1_scatter_asymptotic_optimality() {
    let problem = ScatterProblem::from_instance(figure2()).unwrap();
    let solution = problem.solve().unwrap();
    let schedule = solution.build_schedule(&problem).unwrap();
    let long = execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(4800, 1));
    assert!(long.completed_operations <= long.upper_bound);
    assert!(long.efficiency() > rat(97, 100), "efficiency {}", long.efficiency());
}

/// Proposition 1 (reduce): same statement for the Figure 6 reduce schedule.
#[test]
fn proposition1_reduce_asymptotic_optimality() {
    let problem = ReduceProblem::from_instance(figure6()).unwrap();
    let solution = problem.solve().unwrap();
    let schedule = solution.build_schedule(&problem).unwrap();
    let long = execute_reduce_schedule(&problem, &schedule, solution.throughput(), &rat(2000, 1));
    assert!(long.completed_operations <= long.upper_bound);
    assert!(long.efficiency() > rat(97, 100), "efficiency {}", long.efficiency());
}

/// Proposition 4: the fixed-period approximation loses at most #trees/T_fixed.
#[test]
fn proposition4_fixed_period_loss_bound() {
    let problem = ReduceProblem::from_instance(figure6()).unwrap();
    let solution = problem.solve().unwrap();
    let trees = solution.extract_trees(&problem).unwrap();
    for t in [2i64, 5, 10, 50, 500] {
        let plan = approximate_for_period(&trees, &rat(t, 1)).unwrap();
        let loss = solution.throughput() - &plan.throughput;
        assert!(loss >= Ratio::zero());
        assert!(loss <= plan.loss_bound, "period {t}: loss {loss} > bound {}", plan.loss_bound);
    }
}

/// Section 3.5: gossip generalizes scatter — with a single source both LPs
/// give the same throughput on the Figure 2 platform.
#[test]
fn gossip_specializes_to_scatter() {
    let inst = figure2();
    let scatter = ScatterProblem::from_instance(inst.clone()).unwrap();
    let gossip =
        GossipProblem::new(inst.platform.clone(), vec![inst.source], inst.targets.clone()).unwrap();
    assert_eq!(scatter.solve().unwrap().throughput(), gossip.solve().unwrap().throughput());
}

/// The steady-state optimum never loses to the classical baselines, and on the
/// Figure 2 platform it strictly beats the direct scatter.
#[test]
fn steady_state_dominates_baselines() {
    let problem = ScatterProblem::from_instance(figure2()).unwrap();
    let optimal = problem.solve().unwrap();
    let ops = 40;
    let baseline =
        measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, ops), ops)
            .unwrap();
    assert!(baseline.throughput <= *optimal.throughput());

    let problem = ReduceProblem::from_instance(figure6()).unwrap();
    let optimal = problem.solve().unwrap();
    let flat =
        measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, ops), ops)
            .unwrap();
    let bino =
        measure_pipelined_throughput(problem.platform(), &binomial_reduce(&problem, ops), ops)
            .unwrap();
    assert!(flat.throughput <= *optimal.throughput());
    assert!(bino.throughput <= *optimal.throughput());
    // The steady-state mix strictly beats the flat tree here (the flat tree
    // funnels everything through the target's ports).
    assert!(flat.throughput < *optimal.throughput());
}
